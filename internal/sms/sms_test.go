package sms

import (
	"testing"

	"repro/internal/ddg"
	"repro/internal/ims"
	"repro/internal/machine"
	"repro/internal/perfect"
	"repro/internal/regpress"
	"repro/internal/schedule"
)

func lat() machine.Latencies { return machine.DefaultLatencies() }

func TestScheduleKernels(t *testing.T) {
	for _, k := range perfect.Kernels() {
		for _, width := range []int{1, 2, 4, 8} {
			g := ddg.FromLoop(k, lat())
			m := machine.Unclustered(width)
			s, st, err := Schedule(g, m, Options{})
			if err != nil {
				t.Fatalf("%s width %d: %v", k.Name, width, err)
			}
			if err := schedule.Verify(s); err != nil {
				t.Fatalf("%s width %d: %v", k.Name, width, err)
			}
			if st.II < st.MII {
				t.Fatalf("%s: II %d < MII %d", k.Name, st.II, st.MII)
			}
		}
	}
}

func TestScheduleCorpusSample(t *testing.T) {
	for _, l := range perfect.CorpusN(perfect.DefaultSeed, 100) {
		g := ddg.FromLoop(l, lat())
		m := machine.Unclustered(3)
		s, st, err := Schedule(g, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if err := schedule.Verify(s); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		mii, _ := g.MII(m)
		if st.II < mii {
			t.Fatalf("%s: II %d < MII %d", l.Name, st.II, mii)
		}
	}
}

func TestRejectsClusteredMachine(t *testing.T) {
	g := ddg.FromLoop(perfect.KernelDot(), lat())
	if _, _, err := Schedule(g, machine.Clustered(2), Options{}); err == nil {
		t.Fatal("clustered machine accepted")
	}
}

func TestBackwardScansHappen(t *testing.T) {
	total := Stats{}
	for _, l := range perfect.CorpusN(perfect.DefaultSeed, 60) {
		g := ddg.FromLoop(l, lat())
		_, st, err := Schedule(g, machine.Unclustered(3), Options{})
		if err != nil {
			t.Fatal(err)
		}
		total.Forward += st.Forward
		total.Backward += st.Backward
	}
	if total.Backward == 0 {
		t.Fatal("no backward placements across 60 loops — the swing is dead code")
	}
	t.Logf("placements: %d forward, %d backward", total.Forward, total.Backward)
}

// SMS's reason to exist: close to IMS's II at lower register pressure.
func TestCompetitiveIIAndLowerPressure(t *testing.T) {
	loops := perfect.CorpusN(perfect.DefaultSeed, 80)
	m := machine.Unclustered(3)
	var iiWorse, iiBetter int
	var smsLives, imsLives int
	for _, l := range loops {
		g := ddg.FromLoop(l, lat())
		sIMS, stIMS, err := ims.Schedule(g, m, ims.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sSMS, stSMS, err := Schedule(g, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if stSMS.II > stIMS.II {
			iiWorse++
		}
		if stSMS.II < stIMS.II {
			iiBetter++
		}
		smsLives += regpress.Analyze(sSMS).MaxLives
		imsLives += regpress.Analyze(sIMS).MaxLives
	}
	t.Logf("II: SMS worse on %d, better on %d of %d; MaxLives total: SMS %d vs IMS %d",
		iiWorse, iiBetter, len(loops), smsLives, imsLives)
	if iiWorse > len(loops)/3 {
		t.Errorf("SMS lost the II race on %d/%d loops; it should be competitive", iiWorse, len(loops))
	}
	if smsLives > imsLives {
		t.Errorf("SMS total MaxLives %d exceeds IMS %d — lifetime sensitivity is not working", smsLives, imsLives)
	}
}

func TestOrderingCoversAllNodesOnce(t *testing.T) {
	for _, l := range perfect.CorpusN(perfect.DefaultSeed, 50) {
		g := ddg.FromLoop(l, lat())
		order := ordering(g, g.RecMII(), nil)
		if len(order) != g.NumNodes() {
			t.Fatalf("%s: order has %d entries for %d nodes", l.Name, len(order), g.NumNodes())
		}
		seen := map[int]bool{}
		for _, n := range order {
			if seen[n] {
				t.Fatalf("%s: node %d ordered twice", l.Name, n)
			}
			seen[n] = true
		}
	}
}
