package sms

import (
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/perfect"
	"repro/internal/schedule"
)

// The whole corpus at four machine widths: every loop must schedule
// and verify, SMS proper must handle almost everything itself (the
// IMS fallback exists for the rare ordering trap), and promotions must
// actually fire somewhere.
func TestStressFullCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus stress skipped in -short mode")
	}
	var runs, fallbacks, promotions int
	for _, l := range perfect.CorpusN(perfect.DefaultSeed, perfect.CorpusSize) {
		for _, w := range []int{1, 2, 5, 10} {
			g := ddg.FromLoop(l, lat())
			s, st, err := Schedule(g, machine.Unclustered(w), Options{})
			if err != nil {
				t.Fatalf("%s width %d: %v", l.Name, w, err)
			}
			if err := schedule.Verify(s); err != nil {
				t.Fatalf("%s width %d: %v", l.Name, w, err)
			}
			runs++
			if st.FellBack {
				fallbacks++
			}
			promotions += st.Promotions
		}
	}
	t.Logf("%d schedules, %d promotions, %d IMS fallbacks", runs, promotions, fallbacks)
	if fallbacks*100 > runs {
		t.Errorf("fallback rate %d/%d exceeds 1%%", fallbacks, runs)
	}
	if promotions == 0 {
		t.Error("no ordering promotions across the corpus — the repair is dead code")
	}
}
