// Package sms implements Swing Modulo Scheduling (Llosa, González,
// Ayguadé, Valero; PACT 1996) — the lifetime-sensitive modulo
// scheduler by one of the paper's authors. The paper's motivation (§1)
// is that software pipelining inflates register requirements [10]; SMS
// attacks exactly that by placing each operation as close as possible
// to its already-scheduled neighbours, scanning *backwards* from the
// latest feasible slot when only successors are scheduled (the
// "swing"), and it never backtracks.
//
// SMS serves two roles in this reproduction: an independent baseline
// for the unclustered machine, and the producer of the
// register-pressure comparison in internal/regpress that grounds the
// paper's architectural argument.
package sms

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ddg"
	"repro/internal/ims"
	"repro/internal/machine"
	"repro/internal/mrt"
	"repro/internal/schedule"
)

// Options tune the scheduler.
type Options struct {
	// MaxII caps the candidate initiation interval (0 = derived).
	MaxII int
}

// Stats reports how scheduling went.
type Stats struct {
	MII      int
	II       int
	IIsTried int
	// Forward / Backward count placements by scan direction.
	Forward, Backward int
	// Promotions counts ordering repairs for structurally stuck nodes
	// (see Schedule).
	Promotions int
	// FellBack reports that SMS proper failed at every candidate II
	// and the schedule comes from the IMS fallback.
	FellBack bool
}

// Schedule modulo-schedules the graph on an unclustered machine with
// SMS. The graph is not modified.
func Schedule(g *ddg.Graph, m *machine.Machine, opt Options) (*schedule.Schedule, Stats, error) {
	return ScheduleCtx(context.Background(), g, m, opt) //dms:ctxok documented ctx-less compatibility wrapper around ScheduleCtx
}

// ScheduleCtx is Schedule with cooperative cancellation: ctx is checked
// before every candidate-II attempt (including the promotion retries,
// so a canceled context aborts within one attempt) and is forwarded to
// the IMS fallback. The returned error wraps ctx.Err().
func ScheduleCtx(ctx context.Context, g *ddg.Graph, m *machine.Machine, opt Options) (*schedule.Schedule, Stats, error) {
	var st Stats
	if m.Clusters != 1 {
		return nil, st, fmt.Errorf("sms: machine %s has %d clusters; SMS handles unclustered machines only", m.Name, m.Clusters)
	}
	mii, err := g.MII(m)
	if err != nil {
		return nil, st, err
	}
	st.MII = mii
	maxII := opt.MaxII
	if maxII <= 0 {
		maxII = ims.MaxIIBound(g)
	}
	if maxII < mii {
		maxII = mii
	}
	// boost forces stuck nodes to the front of the order. SMS's
	// published ordering pulls "nodes on paths" between ordered regions
	// in together, which prevents a node from ending up with both
	// neighbours placed around a window pinned by distance-0 edges;
	// our simpler global-frontier ordering can run into that trap on
	// diamond shapes, and since such windows do not widen with II,
	// raising II would never help (LLVM's SMS-based MachinePipeliner
	// simply refuses to pipeline such loops). Instead the stuck node is
	// promoted to the front of the ordering and the attempt retried;
	// boosts are discarded between candidate IIs so a repair for one II
	// cannot poison another. If every candidate II fails, Schedule
	// falls back to IMS — the standard production-compiler safety net —
	// and records it in Stats.FellBack.
	// The swing order depends on MII (not the candidate II) and on the
	// boosts, which reset between candidate IIs — so the boost-free
	// order is II-invariant: compute it once and recompute only after a
	// promotion. The placement scratch (reservation table, times) is
	// likewise allocated once and rewound per attempt.
	baseOrder := ordering(g, mii, nil)
	sr := &searcher{
		g:     g,
		m:     m,
		ids:   g.NodeIDs(),
		times: make([]int, g.NumIDs()),
		has:   make([]bool, g.NumIDs()),
	}
	for ii := mii; ii <= maxII; ii++ {
		var boost map[int]int
		order := baseOrder
		promotions := 0
		for {
			if err := ctx.Err(); err != nil {
				return nil, st, fmt.Errorf("sms: %s on %s: %w", g.Name(), m.Name, err)
			}
			st.IIsTried++
			s, ok, stuck := sr.tryII(order, ii, &st)
			if ok {
				st.II = ii
				return s, st, nil
			}
			if stuck < 0 || promotions >= 2*g.NumNodes() {
				break // resource failure: a larger II is the only cure
			}
			if boost == nil {
				boost = make(map[int]int)
			}
			boost[stuck]++
			promotions++
			st.Promotions++
			order = ordering(g, mii, boost)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, st, fmt.Errorf("sms: %s on %s: %w", g.Name(), m.Name, err)
	}
	s, ist, err := ims.ScheduleCtx(ctx, g, m, ims.Options{MaxII: opt.MaxII})
	if err != nil {
		return nil, st, fmt.Errorf("sms: %s failed within MaxII %d and the IMS fallback failed too: %w", g.Name(), maxII, err)
	}
	st.II = ist.II
	st.FellBack = true
	return s, st, nil
}

// ordering produces the swing node order: strongly connected components
// first by criticality (their RecMII contribution), and inside the
// growing order each next node is a neighbour of the already-ordered
// set, preferring nodes on the critical path. This keeps consecutive
// order positions adjacent in the graph so the placement scan can hug
// the neighbours. Boosted nodes are promoted to the very front (the
// stuck-node repair described in Schedule).
func ordering(g *ddg.Graph, ii int, boost map[int]int) []int {
	heights := g.Heights(ii)
	depths := depths(g, ii)

	sccs := g.SCCs()
	type comp struct {
		nodes []int
		crit  int // cycle criticality: max height+depth inside
	}
	comps := make([]comp, 0, len(sccs))
	for _, c := range sccs {
		sort.Ints(c)
		crit := 0
		for _, n := range c {
			if v := heights[n] + depths[n]; v > crit {
				crit = v
			}
		}
		// Recurrence components rank above singletons of equal span.
		if len(c) > 1 || hasSelfEdge(g, c[0]) {
			crit += 1 << 20
		}
		comps = append(comps, comp{nodes: c, crit: crit})
	}
	sort.SliceStable(comps, func(i, j int) bool {
		if comps[i].crit != comps[j].crit {
			return comps[i].crit > comps[j].crit
		}
		return comps[i].nodes[0] < comps[j].nodes[0]
	})

	// Component priority: nodes of more critical components are pulled
	// into the order earlier when adjacency does not decide.
	prio := make(map[int]int, g.NumNodes())
	for rank, c := range comps {
		for _, n := range c.nodes {
			prio[n] = len(comps) - rank
		}
	}

	// Global frontier: always prefer a node adjacent to the ordered
	// set (successors-ordered first, so producers are placed backward
	// toward their consumers), then the component priority, then the
	// node's criticality. This keeps every placement bounded on at
	// most one side until a region of the graph closes, which is what
	// lets the forward/backward scans hug the neighbours.
	ordered := make([]int, 0, g.NumNodes())
	inOrder := make(map[int]bool, g.NumNodes())
	pending := make(map[int]bool, g.NumNodes())
	for _, n := range g.NodeIDs() {
		pending[n] = true
	}
	for len(pending) > 0 {
		best, bestKey := -1, [5]int{-1, -1, -1, -1, -1}
		//dms:orderok argmax under a strict total-order key whose last component is the node ID
		for n := range pending {
			succOrdered, predOrdered := 0, 0
			for _, e := range g.Out(n) {
				if e.To != n && inOrder[e.To] {
					succOrdered = 1
				}
			}
			for _, e := range g.In(n) {
				if e.From != n && inOrder[e.From] {
					predOrdered = 1
				}
			}
			key := [5]int{boost[n], succOrdered*2 + predOrdered, prio[n], heights[n] + depths[n], -n}
			if best < 0 || keyLess(bestKey, key) {
				best, bestKey = n, key
			}
		}
		ordered = append(ordered, best)
		inOrder[best] = true
		delete(pending, best)
	}
	return ordered
}

func keyLess(a, b [5]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func hasSelfEdge(g *ddg.Graph, n int) bool {
	for _, e := range g.Out(n) {
		if e.To == n {
			return true
		}
	}
	return false
}

// depths is the dual of Heights: longest weighted path from any source.
func depths(g *ddg.Graph, ii int) []int {
	d := make([]int, g.NumIDs())
	for pass := 0; pass <= g.NumNodes(); pass++ {
		changed := false
		g.Edges(func(e ddg.Edge) {
			if v := d[e.From] + e.Delay - ii*e.Distance; v > d[e.To] {
				d[e.To] = v
				changed = true
			}
		})
		if !changed {
			return d
		}
	}
	panic(fmt.Sprintf("sms: depths(%d) called below RecMII", ii))
}

// searcher holds the II-invariant state of one SMS run: the node set
// and the placement scratch (reservation table, tentative times)
// rewound at every attempt instead of reallocated.
type searcher struct {
	g     *ddg.Graph
	m     *machine.Machine
	ids   []int
	tab   *mrt.Table
	times []int
	has   []bool
}

// tryII places every node once, in swing order, with no backtracking.
// Times may go negative during the scan; the final schedule is shifted
// by a multiple of II so they are non-negative (which changes nothing
// modulo II). On failure, stuck identifies a node whose feasibility
// window was structurally empty (lstart < estart), or -1 for a plain
// resource failure.
func (sr *searcher) tryII(order []int, ii int, st *Stats) (s *schedule.Schedule, ok bool, stuck int) {
	g, m := sr.g, sr.m
	if sr.tab == nil {
		sr.tab = mrt.New(m, ii)
	} else {
		sr.tab.Reset(ii)
	}
	tab := sr.tab
	times, has := sr.times, sr.has
	for i := range has {
		has[i] = false
	}
	class := func(n int) machine.OpClass { return g.Node(n).Class }

	const unbounded = 1 << 30
	for _, op := range order {
		estart, lstart := -unbounded, unbounded
		for _, eid := range g.InEdgeIDs(op) {
			if !g.EdgeAlive(eid) {
				continue
			}
			e := g.EdgeAt(eid)
			if e.From == op {
				continue
			}
			if has[e.From] {
				if v := times[e.From] + e.Delay - ii*e.Distance; v > estart {
					estart = v
				}
			}
		}
		for _, eid := range g.OutEdgeIDs(op) {
			if !g.EdgeAlive(eid) {
				continue
			}
			e := g.EdgeAt(eid)
			if e.To == op {
				continue
			}
			if has[e.To] {
				if v := times[e.To] - e.Delay + ii*e.Distance; v < lstart {
					lstart = v
				}
			}
		}
		found := false
		var slot int
		switch {
		case estart > -unbounded && lstart == unbounded:
			for t := estart; t < estart+ii; t++ {
				if tab.Free(t, 0, class(op)) {
					slot, found = t, true
					break
				}
			}
			st.Forward++
		case estart == -unbounded && lstart < unbounded:
			for t := lstart; t > lstart-ii; t-- {
				if tab.Free(t, 0, class(op)) {
					slot, found = t, true
					break
				}
			}
			st.Backward++
		case estart > -unbounded && lstart < unbounded:
			for t := estart; t <= lstart && t < estart+ii; t++ {
				if tab.Free(t, 0, class(op)) {
					slot, found = t, true
					break
				}
			}
			if !found {
				// A both-bounded window pinned by distance-0 edges does
				// not widen with II, whether it is empty or merely
				// resource-blocked; report the node so the caller can
				// promote it in the ordering instead of raising II.
				return nil, false, op
			}
			st.Forward++
		default:
			for t := 0; t < ii; t++ {
				if tab.Free(t, 0, class(op)) {
					slot, found = t, true
					break
				}
			}
			st.Forward++
		}
		if !found {
			return nil, false, -1
		}
		tab.Place(op, slot, 0, class(op))
		times[op] = slot
		has[op] = true
	}

	// Normalise: shift by a multiple of II so all times are ≥ 0.
	minT := 0
	for n, ok := range has {
		if ok && times[n] < minT {
			minT = times[n]
		}
	}
	shift := 0
	if minT < 0 {
		shift = ((-minT + ii - 1) / ii) * ii
	}
	s = schedule.New(g, m, ii)
	for _, n := range sr.ids {
		s.Place(n, schedule.Placement{Time: times[n] + shift, Cluster: 0})
	}
	return s, true, -1
}
