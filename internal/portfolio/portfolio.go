// Package portfolio implements a racing meta-scheduler: several
// scheduling back-ends attack the same loop concurrently on the
// ctx-aware Schedule seam, the first acceptable result wins and the
// losers are canceled. An optional exact entrant (internal/exact)
// upgrades the race into a measurement instrument — when it finishes
// it proves the optimal II, and the winner's distance from it is the
// optimality gap the paper-level metrics report.
//
// The package is deliberately driver-agnostic: entrants are closures,
// so the racing engine has no dependency on the scheduler registry
// (which lives in internal/driver and registers the "portfolio"
// adapter built on top of this package).
//
// Race semantics:
//
//   - The first successful heuristic result becomes the provisional
//     winner and cancels the other heuristics. If its II already
//     equals its MII it is provably optimal — everything is canceled
//     and the gap is 0.
//   - Otherwise the exact entrant keeps running for a grace window.
//     If it finishes in time the optimum is known: the winner's gap
//     is recorded, and when the exact entrant is itself a contender
//     (not bound-only) with a strictly better II, it takes the win.
//     On a tie the heuristic keeps the win (its result arrived first;
//     byte-identical output to running it alone).
//   - If the exact entrant finishes first, its result is already
//     optimal: contenders are canceled and it wins outright. A
//     bound-only exact entrant (racing on a relaxed pooled machine
//     whose schedule is not valid for the target) never wins; it only
//     contributes the bound.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/schedule"
)

// DefaultGrace is how long the race keeps the exact entrant alive
// after a heuristic has already won, waiting for an optimality proof.
const DefaultGrace = 250 * time.Millisecond

// RunResult is what one entrant produces.
type RunResult struct {
	// Sched is the winning schedule candidate; bound-only entrants may
	// return it but it is never surfaced as the race result.
	Sched *schedule.Schedule
	// MII and II are the entrant's lower bound and achieved interval.
	MII, II int
	// Payload carries opaque per-entrant data (e.g. driver stats) back
	// to whoever assembled the race.
	Payload any
}

// Entrant is one racing back-end.
type Entrant struct {
	// Name labels the entrant in counters; must be unique in the race.
	Name string
	// Exact marks the entrant whose success proves the optimal II. At
	// most one entrant may be exact.
	Exact bool
	// BoundOnly excludes the entrant from winning: its result only
	// feeds the optimality bound (e.g. exact on the pooled relaxation
	// of a clustered machine, whose schedule targets the wrong
	// machine).
	BoundOnly bool
	// Run executes the back-end under the race's cancellation scope.
	Run func(ctx context.Context) (RunResult, error)
}

// Options tune one race.
type Options struct {
	// Grace is the post-win wait for the exact entrant's proof:
	// 0 means DefaultGrace, negative disables waiting entirely.
	Grace time.Duration
}

// Outcome reports one race.
type Outcome struct {
	// Winner names the entrant whose result is returned.
	Winner string
	// Result is the winning entrant's output.
	Result RunResult
	// OptimalII and Proved report the optimality bound: Proved is true
	// when the optimum is known (exact finished, or the winner hit its
	// MII), and Gap = Result.II − OptimalII ≥ 0.
	OptimalII int
	Proved    bool
	Gap       int
	// Won, Lost and Canceled partition the entrants by fate, each
	// sorted by name: the winner; entrants that finished on their own
	// without winning (including own errors); entrants the race
	// canceled.
	Won, Lost, Canceled []string
}

type arrival struct {
	i   int
	res RunResult
	err error
}

// Race runs all entrants concurrently and returns the winning result.
// It blocks until every entrant goroutine has returned (losers exit
// promptly after cancellation), so no goroutines leak past the call.
func Race(ctx context.Context, entrants []Entrant, opt Options) (Outcome, error) {
	var out Outcome
	if len(entrants) == 0 {
		return out, errors.New("portfolio: no entrants")
	}
	exactIdx := -1
	contenders := 0
	for i, e := range entrants {
		if e.Exact {
			if exactIdx >= 0 {
				return out, fmt.Errorf("portfolio: multiple exact entrants (%s, %s)", entrants[exactIdx].Name, e.Name)
			}
			exactIdx = i
		}
		if !e.BoundOnly {
			contenders++
		}
		for j := i + 1; j < len(entrants); j++ {
			if entrants[j].Name == e.Name {
				return out, fmt.Errorf("portfolio: duplicate entrant name %q", e.Name)
			}
		}
	}
	if contenders == 0 {
		return out, errors.New("portfolio: every entrant is bound-only")
	}
	grace := opt.Grace
	if grace == 0 {
		grace = DefaultGrace
	}

	rctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	cancels := make([]context.CancelFunc, len(entrants))
	arrivals := make(chan arrival, len(entrants))
	var wg sync.WaitGroup
	for i := range entrants {
		ectx, cancel := context.WithCancel(rctx)
		cancels[i] = cancel
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := entrants[i].Run(ectx)
			arrivals <- arrival{i: i, res: r, err: err}
		}(i)
	}
	defer wg.Wait()

	var (
		finished = make([]bool, len(entrants))
		canceled = make([]bool, len(entrants))
		res      = make([]RunResult, len(entrants))
		errs     = make([]error, len(entrants))
		winner   = -1
		optimal  = 0
		proved   = false
	)
	cancelEntrant := func(i int) {
		if !finished[i] && !canceled[i] {
			canceled[i] = true
			cancels[i]()
		}
	}
	cancelOthers := func(keep int, sparExact bool) {
		for j := range entrants {
			if j == keep || (sparExact && j == exactIdx) {
				continue
			}
			cancelEntrant(j)
		}
	}

	var graceTimer *time.Timer
	var graceC <-chan time.Time
	defer func() {
		if graceTimer != nil {
			graceTimer.Stop()
		}
	}()
	armGrace := func() {
		if exactIdx < 0 || finished[exactIdx] || canceled[exactIdx] || graceC != nil {
			return
		}
		if grace < 0 {
			cancelEntrant(exactIdx)
			return
		}
		graceTimer = time.NewTimer(grace)
		graceC = graceTimer.C
	}

	for done := 0; done < len(entrants); {
		select {
		case a := <-arrivals:
			done++
			finished[a.i] = true
			errs[a.i] = a.err
			if a.err != nil {
				// A loss (or the echo of our own cancellation). If the
				// exact entrant died on its own the proof is never
				// coming: stop waiting for it.
				if a.i == exactIdx && winner >= 0 {
					cancelOthers(winner, false)
				}
				continue
			}
			res[a.i] = a.res
			ent := entrants[a.i]
			if ent.Exact {
				// Exact success: the optimum is proved.
				optimal, proved = a.res.II, true
				if !ent.BoundOnly && (winner < 0 || a.res.II < res[winner].II) {
					winner = a.i
				}
				if winner >= 0 {
					cancelOthers(winner, false)
				}
				continue
			}
			switch {
			case winner < 0:
				winner = a.i
				if a.res.II <= a.res.MII {
					// Already optimal: no proof needed from exact.
					optimal, proved = a.res.II, true
					cancelOthers(winner, false)
				} else if proved {
					// Exact (bound-only) finished before any heuristic.
					cancelOthers(winner, false)
				} else {
					cancelOthers(winner, true)
					armGrace()
				}
			case !entrants[winner].Exact && a.res.II < res[winner].II:
				// A straggler we canceled still finished, and better.
				winner = a.i
			}
		case <-graceC:
			graceC = nil
			cancelEntrant(exactIdx)
		case <-ctx.Done():
			cancelAll()
			// Keep draining: every entrant returns promptly now.
		}
	}

	if winner < 0 {
		joined := errors.Join(errs...)
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("portfolio: race canceled: %w", errors.Join(err, joined))
		}
		return out, fmt.Errorf("portfolio: every entrant failed: %w", joined)
	}
	out.Winner = entrants[winner].Name
	out.Result = res[winner]
	out.OptimalII = optimal
	out.Proved = proved
	if proved {
		out.Gap = res[winner].II - optimal
	}
	out.Won = []string{entrants[winner].Name}
	for i := range entrants {
		if i == winner {
			continue
		}
		if canceled[i] {
			out.Canceled = append(out.Canceled, entrants[i].Name)
		} else {
			out.Lost = append(out.Lost, entrants[i].Name)
		}
	}
	sort.Strings(out.Lost)
	sort.Strings(out.Canceled)
	return out, nil
}
