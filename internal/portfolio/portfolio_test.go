package portfolio

import (
	"context"
	"errors"
	"testing"
	"time"
)

// immediate returns res as soon as the entrant starts.
func immediate(res RunResult) func(context.Context) (RunResult, error) {
	return func(context.Context) (RunResult, error) { return res, nil }
}

// blockUntilCancel never produces a result; it exits only when the
// race cancels it, optionally signalling the cancellation.
func blockUntilCancel(signal chan<- struct{}) func(context.Context) (RunResult, error) {
	return func(ctx context.Context) (RunResult, error) {
		<-ctx.Done()
		if signal != nil {
			close(signal)
		}
		return RunResult{}, ctx.Err()
	}
}

// afterGate returns res once the gate channel closes (or an error if
// canceled first). Gating on another entrant's observed cancellation
// makes arrival order deterministic without sleeps.
func afterGate(gate <-chan struct{}, res RunResult, err error) func(context.Context) (RunResult, error) {
	return func(ctx context.Context) (RunResult, error) {
		select {
		case <-gate:
			return res, err
		case <-ctx.Done():
			return RunResult{}, ctx.Err()
		}
	}
}

func checkPartition(t *testing.T, out Outcome, n int) {
	t.Helper()
	if got := len(out.Won) + len(out.Lost) + len(out.Canceled); got != n {
		t.Errorf("won %v + lost %v + canceled %v covers %d entrants, want %d",
			out.Won, out.Lost, out.Canceled, got, n)
	}
	if len(out.Won) != 1 || out.Won[0] != out.Winner {
		t.Errorf("Won = %v, want exactly [%s]", out.Won, out.Winner)
	}
}

// TestHeuristicAtMIIWinsAndCancelsAll: a heuristic that hits its MII
// is provably optimal — the exact entrant is canceled, gap is zero.
func TestHeuristicAtMIIWinsAndCancelsAll(t *testing.T) {
	entrants := []Entrant{
		{Name: "dms", Run: immediate(RunResult{MII: 2, II: 2})},
		{Name: "exact", Exact: true, Run: blockUntilCancel(nil)},
	}
	out, err := Race(context.Background(), entrants, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != "dms" || !out.Proved || out.Gap != 0 || out.OptimalII != 2 {
		t.Errorf("outcome %+v, want dms winning proved with gap 0", out)
	}
	if len(out.Canceled) != 1 || out.Canceled[0] != "exact" {
		t.Errorf("Canceled = %v, want [exact]", out.Canceled)
	}
	checkPartition(t, out, len(entrants))
}

// TestExactImprovesWithinGrace: the heuristic wins provisionally with
// a loose II; exact finishes inside the grace window with a strictly
// better II and takes the race.
func TestExactImprovesWithinGrace(t *testing.T) {
	slowGone := make(chan struct{})
	entrants := []Entrant{
		{Name: "dms", Run: immediate(RunResult{MII: 2, II: 4})},
		{Name: "slow", Run: blockUntilCancel(slowGone)},
		{Name: "exact", Exact: true, Run: afterGate(slowGone, RunResult{MII: 2, II: 3}, nil)},
	}
	out, err := Race(context.Background(), entrants, Options{Grace: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != "exact" || !out.Proved || out.OptimalII != 3 || out.Gap != 0 {
		t.Errorf("outcome %+v, want exact winning proved at II 3", out)
	}
	if len(out.Canceled) != 1 || out.Canceled[0] != "slow" {
		t.Errorf("Canceled = %v, want [slow]", out.Canceled)
	}
	if len(out.Lost) != 1 || out.Lost[0] != "dms" {
		t.Errorf("Lost = %v, want [dms]", out.Lost)
	}
	checkPartition(t, out, len(entrants))
}

// TestTieKeepsHeuristicWinner: when exact matches the heuristic's II,
// the heuristic keeps the win (its output is what the caller gets,
// byte-identical to running it alone) but the result is now proved.
func TestTieKeepsHeuristicWinner(t *testing.T) {
	slowGone := make(chan struct{})
	entrants := []Entrant{
		{Name: "dms", Run: immediate(RunResult{MII: 2, II: 3, Payload: "dms-schedule"})},
		{Name: "slow", Run: blockUntilCancel(slowGone)},
		{Name: "exact", Exact: true, Run: afterGate(slowGone, RunResult{MII: 2, II: 3}, nil)},
	}
	out, err := Race(context.Background(), entrants, Options{Grace: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != "dms" || !out.Proved || out.Gap != 0 || out.OptimalII != 3 {
		t.Errorf("outcome %+v, want dms keeping the win, proved, gap 0", out)
	}
	if out.Result.Payload != "dms-schedule" {
		t.Errorf("Result.Payload = %v, want the heuristic's own payload", out.Result.Payload)
	}
	checkPartition(t, out, len(entrants))
}

// TestBoundOnlyExactNeverWins: a bound-only exact entrant with a
// better II contributes the optimality bound but not the schedule.
func TestBoundOnlyExactNeverWins(t *testing.T) {
	exactDone := make(chan struct{})
	entrants := []Entrant{
		{Name: "exact", Exact: true, BoundOnly: true, Run: func(context.Context) (RunResult, error) {
			defer close(exactDone)
			return RunResult{MII: 2, II: 2}, nil
		}},
		{Name: "dms", Run: afterGate(exactDone, RunResult{MII: 2, II: 4}, nil)},
	}
	out, err := Race(context.Background(), entrants, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != "dms" || !out.Proved || out.OptimalII != 2 || out.Gap != 2 {
		t.Errorf("outcome %+v, want dms winning with proved gap 2", out)
	}
	if len(out.Lost) != 1 || out.Lost[0] != "exact" {
		t.Errorf("Lost = %v, want [exact]", out.Lost)
	}
	checkPartition(t, out, len(entrants))
}

// TestGraceExpiryCancelsExact: the proof window runs out, the exact
// entrant is canceled, and the heuristic win stands unproved.
func TestGraceExpiryCancelsExact(t *testing.T) {
	entrants := []Entrant{
		{Name: "dms", Run: immediate(RunResult{MII: 2, II: 4})},
		{Name: "exact", Exact: true, Run: blockUntilCancel(nil)},
	}
	out, err := Race(context.Background(), entrants, Options{Grace: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != "dms" || out.Proved || out.Gap != 0 {
		t.Errorf("outcome %+v, want unproved dms win", out)
	}
	if len(out.Canceled) != 1 || out.Canceled[0] != "exact" {
		t.Errorf("Canceled = %v, want [exact]", out.Canceled)
	}
	checkPartition(t, out, len(entrants))
}

// TestNegativeGraceSkipsProofWait: Grace < 0 cancels exact the moment
// a heuristic wins instead of waiting for the proof.
func TestNegativeGraceSkipsProofWait(t *testing.T) {
	entrants := []Entrant{
		{Name: "dms", Run: immediate(RunResult{MII: 2, II: 4})},
		{Name: "exact", Exact: true, Run: blockUntilCancel(nil)},
	}
	out, err := Race(context.Background(), entrants, Options{Grace: -1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != "dms" || out.Proved {
		t.Errorf("outcome %+v, want immediate unproved dms win", out)
	}
	if len(out.Canceled) != 1 || out.Canceled[0] != "exact" {
		t.Errorf("Canceled = %v, want [exact]", out.Canceled)
	}
	checkPartition(t, out, len(entrants))
}

// TestExactFirstWinsOutright: exact finishing before any heuristic is
// already optimal; everyone else is canceled.
func TestExactFirstWinsOutright(t *testing.T) {
	entrants := []Entrant{
		{Name: "dms", Run: blockUntilCancel(nil)},
		{Name: "exact", Exact: true, Run: immediate(RunResult{MII: 2, II: 2})},
	}
	out, err := Race(context.Background(), entrants, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != "exact" || !out.Proved || out.Gap != 0 {
		t.Errorf("outcome %+v, want exact winning proved", out)
	}
	if len(out.Canceled) != 1 || out.Canceled[0] != "dms" {
		t.Errorf("Canceled = %v, want [dms]", out.Canceled)
	}
	checkPartition(t, out, len(entrants))
}

// TestExactErrorLeavesWinUnproved: exact failing on its own (budget
// exhausted) can't prove anything; the heuristic win stands unproved.
func TestExactErrorLeavesWinUnproved(t *testing.T) {
	slowGone := make(chan struct{})
	entrants := []Entrant{
		{Name: "dms", Run: immediate(RunResult{MII: 2, II: 4})},
		{Name: "slow", Run: blockUntilCancel(slowGone)},
		{Name: "exact", Exact: true, Run: afterGate(slowGone, RunResult{}, errors.New("budget exhausted"))},
	}
	out, err := Race(context.Background(), entrants, Options{Grace: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != "dms" || out.Proved {
		t.Errorf("outcome %+v, want unproved dms win", out)
	}
	if len(out.Lost) != 1 || out.Lost[0] != "exact" {
		t.Errorf("Lost = %v, want [exact]", out.Lost)
	}
	checkPartition(t, out, len(entrants))
}

// TestAllEntrantsFail: no winner means an error carrying the entrant
// failures.
func TestAllEntrantsFail(t *testing.T) {
	boom := errors.New("boom")
	entrants := []Entrant{
		{Name: "a", Run: func(context.Context) (RunResult, error) { return RunResult{}, boom }},
		{Name: "b", Run: func(context.Context) (RunResult, error) { return RunResult{}, boom }},
	}
	_, err := Race(context.Background(), entrants, Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped entrant failure", err)
	}
}

// TestParentCancel: a canceled caller context aborts the race with
// context.Canceled even though entrants would otherwise block.
func TestParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	entrants := []Entrant{
		{Name: "dms", Run: blockUntilCancel(nil)},
		{Name: "exact", Exact: true, Run: blockUntilCancel(nil)},
	}
	_, err := Race(ctx, entrants, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRaceValidation covers the malformed-entrant errors.
func TestRaceValidation(t *testing.T) {
	run := immediate(RunResult{MII: 1, II: 1})
	cases := []struct {
		name     string
		entrants []Entrant
	}{
		{"empty", nil},
		{"all bound-only", []Entrant{{Name: "x", BoundOnly: true, Run: run}}},
		{"duplicate names", []Entrant{{Name: "x", Run: run}, {Name: "x", Run: run}}},
		{"two exact", []Entrant{
			{Name: "a", Exact: true, Run: run},
			{Name: "b", Exact: true, Run: run},
		}},
	}
	for _, tc := range cases {
		if _, err := Race(context.Background(), tc.entrants, Options{}); err == nil {
			t.Errorf("%s: Race accepted invalid entrants", tc.name)
		}
	}
}
