package mrt_test

import (
	"math/rand"
	"testing"

	"repro/internal/machine"
	"repro/internal/mrt"
)

// refMRT is a deliberately naive reservation table: a map from
// (slot, cluster, kind) to the occupant list. It exists only to check
// the flat-slice Table against an implementation too simple to be
// wrong.
type refMRT struct {
	ii       int
	clusters int
	capac    [machine.NumFUKinds]int
	occ      map[[3]int][]int
	placed   map[int][3]int
}

func newRefMRT(m *machine.Machine, ii int) *refMRT {
	r := &refMRT{ii: ii, clusters: m.Clusters, occ: map[[3]int][]int{}, placed: map[int][3]int{}}
	for k := 0; k < machine.NumFUKinds; k++ {
		r.capac[k] = m.PerCluster[k]
	}
	return r
}

func (r *refMRT) slot(time int) int {
	s := time % r.ii
	if s < 0 {
		s += r.ii
	}
	return s
}

func (r *refMRT) key(time, cluster int, k machine.FUKind) [3]int {
	return [3]int{r.slot(time), cluster, int(k)}
}

func (r *refMRT) free(time, cluster int, class machine.OpClass) bool {
	k := class.FU()
	return len(r.occ[r.key(time, cluster, k)]) < r.capac[k]
}

func (r *refMRT) place(node, time, cluster int, class machine.OpClass) {
	key := r.key(time, cluster, class.FU())
	r.occ[key] = append(r.occ[key], node)
	r.placed[node] = key
}

func (r *refMRT) remove(node int) {
	key := r.placed[node]
	delete(r.placed, node)
	cell := r.occ[key]
	for i, n := range cell {
		if n == node {
			r.occ[key] = append(cell[:i:i], cell[i+1:]...)
			return
		}
	}
}

func (r *refMRT) kindUsage(cluster int, k machine.FUKind) int {
	total := 0
	for s := 0; s < r.ii; s++ {
		total += len(r.occ[[3]int{s, cluster, int(k)}])
	}
	return total
}

// compare checks every observable of the Table against the reference:
// all cells' occupant lists (including order), Free for every class,
// Placed for every node seen, and the per-(cluster, kind) aggregates.
func compare(t *testing.T, trial, step int, tab *mrt.Table, ref *refMRT, maxNode int) {
	t.Helper()
	for s := 0; s < ref.ii; s++ {
		for c := 0; c < ref.clusters; c++ {
			for k := machine.FUKind(0); int(k) < machine.NumFUKinds; k++ {
				want := ref.occ[[3]int{s, c, int(k)}]
				got := tab.Occupants(s, c, k)
				if len(got) != len(want) {
					t.Fatalf("trial %d step %d: cell (%d,%d,%v) has %v, reference %v", trial, step, s, c, k, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d step %d: cell (%d,%d,%v) order %v, reference %v", trial, step, s, c, k, got, want)
					}
				}
				if got := tab.Used(s, c, k); got != len(want) {
					t.Fatalf("trial %d step %d: Used(%d,%d,%v) = %d, reference %d", trial, step, s, c, k, got, len(want))
				}
			}
			for class := machine.OpClass(0); int(class) < machine.NumOpClasses; class++ {
				if got, want := tab.Free(s, c, class), ref.free(s, c, class); got != want {
					t.Fatalf("trial %d step %d: Free(%d,%d,%v) = %v, reference %v", trial, step, s, c, class, got, want)
				}
			}
		}
	}
	for c := 0; c < ref.clusters; c++ {
		for k := machine.FUKind(0); int(k) < machine.NumFUKinds; k++ {
			if got, want := tab.KindUsage(c, k), ref.kindUsage(c, k); got != want {
				t.Fatalf("trial %d step %d: KindUsage(%d,%v) = %d, reference %d", trial, step, c, k, got, want)
			}
			if got, want := tab.FreeKindSlots(c, k), ref.ii*ref.capac[k]-ref.kindUsage(c, k); got != want {
				t.Fatalf("trial %d step %d: FreeKindSlots(%d,%v) = %d, reference %d", trial, step, c, k, got, want)
			}
		}
	}
	for n := 0; n < maxNode; n++ {
		_, want := ref.placed[n]
		if got := tab.Placed(n); got != want {
			t.Fatalf("trial %d step %d: Placed(%d) = %v, reference %v", trial, step, n, got, want)
		}
	}
}

// TestTableMatchesMapModel drives one Table through random
// place/remove/Reset sequences — negative times included, Reset
// reusing the same Table across changing IIs the way the II search
// does — and checks every observable against the map model after each
// step.
func TestTableMatchesMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		m := machine.Clustered(1 + rng.Intn(4))
		ii := 1 + rng.Intn(8)
		tab := mrt.New(m, ii)
		ref := newRefMRT(m, ii)
		const maxNode = 64
		var live []int
		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op == 0: // Reset to a fresh II, reusing the table
				ii = 1 + rng.Intn(8)
				tab.Reset(ii)
				ref = newRefMRT(m, ii)
				live = live[:0]
			case op < 7 || len(live) == 0: // place
				node := rng.Intn(maxNode)
				if _, dup := ref.placed[node]; dup {
					continue
				}
				time := rng.Intn(4*ii) - 2*ii // wraps, sometimes negative
				cluster := rng.Intn(m.Clusters)
				class := machine.OpClass(rng.Intn(machine.NumOpClasses))
				if !ref.free(time, cluster, class) {
					if tab.Free(time, cluster, class) {
						t.Fatalf("trial %d step %d: Table reports free where reference is full", trial, step)
					}
					continue
				}
				tab.Place(node, time, cluster, class)
				ref.place(node, time, cluster, class)
				live = append(live, node)
			default: // remove a random live node
				i := rng.Intn(len(live))
				node := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				tab.Remove(node)
				ref.remove(node)
			}
			compare(t, trial, step, tab, ref, maxNode)
		}
	}
}
