package mrt

import (
	"testing"

	"repro/internal/machine"
)

func TestPlaceFreeRemove(t *testing.T) {
	m := machine.Clustered(2)
	tab := New(m, 3)
	if tab.II() != 3 || tab.Machine() != m {
		t.Fatal("constructor lost parameters")
	}
	if !tab.Free(5, 1, machine.Add) {
		t.Fatal("fresh table not free")
	}
	tab.Place(42, 5, 1, machine.Add) // slot 5 mod 3 = 2
	if tab.Free(2, 1, machine.Add) {
		t.Error("slot 2 must be taken: times 5 and 2 alias mod 3")
	}
	if tab.Free(8, 1, machine.Add) {
		t.Error("time 8 aliases slot 2 and must be taken")
	}
	if !tab.Free(5, 0, machine.Add) {
		t.Error("other cluster must be free")
	}
	if !tab.Free(5, 1, machine.Mul) {
		t.Error("other kind must be free")
	}
	if !tab.Placed(42) || tab.Placed(7) {
		t.Error("Placed bookkeeping wrong")
	}
	if got := tab.Occupants(2, 1, machine.FUAdd); len(got) != 1 || got[0] != 42 {
		t.Errorf("Occupants = %v, want [42]", got)
	}
	tab.Remove(42)
	if !tab.Free(5, 1, machine.Add) {
		t.Error("Remove did not release the slot")
	}
}

func TestNegativeTimesAlias(t *testing.T) {
	tab := New(machine.Clustered(1), 4)
	tab.Place(1, -1, 0, machine.Mul) // -1 mod 4 -> slot 3
	if tab.Free(3, 0, machine.Mul) {
		t.Error("negative time must alias slot 3")
	}
	if tab.Free(7, 0, machine.Mul) {
		t.Error("time 7 must alias slot 3")
	}
}

func TestCapacityGreaterThanOne(t *testing.T) {
	m := machine.Unclustered(3) // 3 units of each useful kind
	tab := New(m, 2)
	tab.Place(1, 0, 0, machine.Load)
	tab.Place(2, 0, 0, machine.Store)
	if !tab.Free(0, 0, machine.Load) {
		t.Fatal("third L/S slot should be free")
	}
	tab.Place(3, 0, 0, machine.Load)
	if tab.Free(0, 0, machine.Store) {
		t.Fatal("L/S capacity 3 exhausted; store must not fit")
	}
	if got := tab.Used(0, 0, machine.FUMem); got != 3 {
		t.Errorf("Used = %d, want 3", got)
	}
}

func TestKindUsageAndFreeSlots(t *testing.T) {
	m := machine.Clustered(3)
	tab := New(m, 4)
	tab.Place(1, 0, 2, machine.Move)
	tab.Place(2, 1, 2, machine.Copy)
	if got := tab.KindUsage(2, machine.FUCopy); got != 2 {
		t.Errorf("KindUsage = %d, want 2", got)
	}
	if got := tab.FreeKindSlots(2, machine.FUCopy); got != 2 {
		t.Errorf("FreeKindSlots = %d, want 2 (4 slots - 2 used)", got)
	}
	if got := tab.FreeKindSlots(0, machine.FUCopy); got != 4 {
		t.Errorf("untouched cluster FreeKindSlots = %d, want 4", got)
	}
}

func TestPanics(t *testing.T) {
	tab := New(machine.Clustered(1), 1)
	tab.Place(1, 0, 0, machine.Add)
	mustPanic(t, "double place", func() { tab.Place(1, 0, 0, machine.Add) })
	mustPanic(t, "over capacity", func() { tab.Place(2, 0, 0, machine.Add) })
	mustPanic(t, "remove unplaced", func() { tab.Remove(9) })
	mustPanic(t, "bad ii", func() { New(machine.Clustered(1), 0) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
