// Package mrt implements the modulo reservation table used by modulo
// schedulers: machine resources are booked at cycle mod II, so a
// conflict-free placement of one iteration guarantees conflict-free
// steady-state execution when the loop is initiated every II cycles.
//
// The table tracks which graph node occupies each slot so that
// backtracking schedulers (IMS, DMS) can pick eviction victims.
package mrt

import (
	"fmt"

	"repro/internal/machine"
)

// Table books functional units of one machine at one initiation
// interval.
type Table struct {
	ii int
	m  *machine.Machine
	// occ[slot][cluster][kind] lists the occupant node IDs.
	occ [][][][]int
	pos map[int]position
}

type position struct {
	slot, cluster int
	kind          machine.FUKind
}

// New returns an empty table for machine m at initiation interval ii.
func New(m *machine.Machine, ii int) *Table {
	if ii < 1 {
		panic(fmt.Sprintf("mrt: initiation interval %d < 1", ii))
	}
	t := &Table{ii: ii, m: m, pos: make(map[int]position)}
	t.occ = make([][][][]int, ii)
	for s := range t.occ {
		t.occ[s] = make([][][]int, m.Clusters)
		for c := range t.occ[s] {
			t.occ[s][c] = make([][]int, machine.NumFUKinds)
		}
	}
	return t
}

// II returns the initiation interval the table was built for.
func (t *Table) II() int { return t.ii }

// Machine returns the machine the table books resources for.
func (t *Table) Machine() *machine.Machine { return t.m }

func (t *Table) slot(time int) int {
	s := time % t.ii
	if s < 0 {
		s += t.ii
	}
	return s
}

// Free reports whether an operation of the given class can issue at the
// given absolute time in the cluster.
func (t *Table) Free(time, cluster int, class machine.OpClass) bool {
	k := class.FU()
	return len(t.occ[t.slot(time)][cluster][k]) < t.m.Capacity(cluster, k)
}

// Used returns the number of booked units at time/cluster for the kind.
func (t *Table) Used(time, cluster int, k machine.FUKind) int {
	return len(t.occ[t.slot(time)][cluster][k])
}

// Occupants returns a copy of the node IDs occupying the slot.
func (t *Table) Occupants(time, cluster int, k machine.FUKind) []int {
	return append([]int(nil), t.occ[t.slot(time)][cluster][k]...)
}

// Place books one unit for the node. It panics if the node is already
// placed or the slot is full: callers check Free (or evict) first.
func (t *Table) Place(node, time, cluster int, class machine.OpClass) {
	if _, dup := t.pos[node]; dup {
		panic(fmt.Sprintf("mrt: node %d placed twice", node))
	}
	k := class.FU()
	s := t.slot(time)
	if len(t.occ[s][cluster][k]) >= t.m.Capacity(cluster, k) {
		panic(fmt.Sprintf("mrt: slot %d cluster %d %v over capacity", s, cluster, k))
	}
	t.occ[s][cluster][k] = append(t.occ[s][cluster][k], node)
	t.pos[node] = position{slot: s, cluster: cluster, kind: k}
}

// Remove releases the node's unit. It panics if the node is not placed.
func (t *Table) Remove(node int) {
	p, ok := t.pos[node]
	if !ok {
		panic(fmt.Sprintf("mrt: node %d not placed", node))
	}
	delete(t.pos, node)
	list := t.occ[p.slot][p.cluster][p.kind]
	for i, n := range list {
		if n == node {
			t.occ[p.slot][p.cluster][p.kind] = append(list[:i], list[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("mrt: node %d missing from its slot", node))
}

// Placed reports whether the node currently books a unit.
func (t *Table) Placed(node int) bool {
	_, ok := t.pos[node]
	return ok
}

// KindUsage returns the number of booked units of kind k in the cluster
// across all II slots.
func (t *Table) KindUsage(cluster int, k machine.FUKind) int {
	n := 0
	for s := 0; s < t.ii; s++ {
		n += len(t.occ[s][cluster][k])
	}
	return n
}

// FreeKindSlots returns the number of free unit-slots of kind k in the
// cluster across all II slots — the quantity DMS maximises when it
// selects among chain options ("maximizes the number of free slots left
// available to schedule move operations", paper §3).
func (t *Table) FreeKindSlots(cluster int, k machine.FUKind) int {
	return t.ii*t.m.Capacity(cluster, k) - t.KindUsage(cluster, k)
}
