// Package mrt implements the modulo reservation table used by modulo
// schedulers: machine resources are booked at cycle mod II, so a
// conflict-free placement of one iteration guarantees conflict-free
// steady-state execution when the loop is initiated every II cycles.
//
// The table tracks which graph node occupies each slot so that
// backtracking schedulers (IMS, DMS) can pick eviction victims.
//
// The representation is flat: occupant IDs live in one slice carved
// into fixed-capacity cells (one cell per slot × cluster × unit kind,
// sized by the machine's capacity for that kind), occupancy counts and
// per-(cluster, kind) usage totals are maintained incrementally, and
// node positions are a dense slice over node IDs. Every operation —
// Free, Place, Remove, KindUsage, FreeKindSlots — is O(1) apart from
// the in-cell shift in Remove (cells hold at most a handful of units),
// and none allocates after construction.
package mrt

import (
	"fmt"

	"repro/internal/machine"
)

// Table books functional units of one machine at one initiation
// interval.
type Table struct {
	ii       int
	m        *machine.Machine
	clusters int

	// capac[k] is the per-cluster unit count of kind k; kindBase[k] is
	// where kind k's cells start in occ. The cell for (slot, cluster,
	// kind) is occ[kindBase[k]+(slot*clusters+cluster)*capac[k]:] with
	// capac[k] entries, of which used[cellIndex(slot,cluster,k)] are
	// occupied (in placement order).
	capac    [machine.NumFUKinds]int
	kindBase [machine.NumFUKinds]int
	occ      []int32
	used     []int32
	// usage[cluster*NumFUKinds+k] is the all-slot total of kind k in
	// the cluster, so KindUsage/FreeKindSlots never scan the II slots.
	usage []int32
	// pos[node] is the node's cell index, or -1 while unplaced.
	pos []int32
}

// New returns an empty table for machine m at initiation interval ii.
func New(m *machine.Machine, ii int) *Table {
	t := &Table{m: m, clusters: m.Clusters}
	for k := 0; k < machine.NumFUKinds; k++ {
		t.capac[k] = m.PerCluster[k]
	}
	t.Reset(ii)
	return t
}

// Reset empties the table and re-sizes it for a new initiation
// interval, reusing the existing buffers when they are large enough —
// the II search resets one table per candidate II instead of
// reallocating it.
func (t *Table) Reset(ii int) {
	if ii < 1 {
		panic(fmt.Sprintf("mrt: initiation interval %d < 1", ii))
	}
	t.ii = ii
	occLen := 0
	for k := 0; k < machine.NumFUKinds; k++ {
		t.kindBase[k] = occLen
		occLen += ii * t.clusters * t.capac[k]
	}
	t.occ = resize(t.occ, occLen)
	t.used = resize(t.used, ii*t.clusters*machine.NumFUKinds)
	t.usage = resize(t.usage, t.clusters*machine.NumFUKinds)
	for i := range t.used {
		t.used[i] = 0
	}
	for i := range t.usage {
		t.usage[i] = 0
	}
	for i := range t.pos {
		t.pos[i] = -1
	}
}

// resize returns s with exactly n entries, reallocating only on
// growth. Contents are unspecified; callers reset what they need.
func resize(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// II returns the initiation interval the table was built for.
func (t *Table) II() int { return t.ii }

// Machine returns the machine the table books resources for.
func (t *Table) Machine() *machine.Machine { return t.m }

func (t *Table) slot(time int) int {
	s := time % t.ii
	if s < 0 {
		s += t.ii
	}
	return s
}

// cell returns the index into used for (slot, cluster, kind).
func (t *Table) cell(slot, cluster int, k machine.FUKind) int {
	return (slot*t.clusters+cluster)*machine.NumFUKinds + int(k)
}

// cellOcc returns the occupant sub-slice (backing capacity, not just
// the used prefix) of a cell.
func (t *Table) cellOcc(slot, cluster int, k machine.FUKind) []int32 {
	base := t.kindBase[k] + (slot*t.clusters+cluster)*t.capac[k]
	return t.occ[base : base+t.capac[k]]
}

// Free reports whether an operation of the given class can issue at the
// given absolute time in the cluster.
//
//dms:hotpath
func (t *Table) Free(time, cluster int, class machine.OpClass) bool {
	k := class.FU()
	return int(t.used[t.cell(t.slot(time), cluster, k)]) < t.capac[k]
}

// Used returns the number of booked units at time/cluster for the kind.
//
//dms:hotpath
func (t *Table) Used(time, cluster int, k machine.FUKind) int {
	return int(t.used[t.cell(t.slot(time), cluster, k)])
}

// Occupants returns a copy of the node IDs occupying the slot, in
// placement order.
func (t *Table) Occupants(time, cluster int, k machine.FUKind) []int {
	s := t.slot(time)
	n := int(t.used[t.cell(s, cluster, k)])
	out := make([]int, n)
	for i, node := range t.cellOcc(s, cluster, k)[:n] {
		out[i] = int(node)
	}
	return out
}

// EachOccupant calls f for every node occupying the slot, in placement
// order, without allocating. f must not mutate the table.
//
//dms:hotpath
func (t *Table) EachOccupant(time, cluster int, k machine.FUKind, f func(node int)) {
	s := t.slot(time)
	n := int(t.used[t.cell(s, cluster, k)])
	for _, node := range t.cellOcc(s, cluster, k)[:n] {
		f(int(node))
	}
}

// Place books one unit for the node. It panics if the node is already
// placed or the slot is full: callers check Free (or evict) first.
//
//dms:hotpath
func (t *Table) Place(node, time, cluster int, class machine.OpClass) {
	for node >= len(t.pos) {
		t.pos = append(t.pos, -1)
	}
	if t.pos[node] >= 0 {
		panic(fmt.Sprintf("mrt: node %d placed twice", node))
	}
	k := class.FU()
	s := t.slot(time)
	ci := t.cell(s, cluster, k)
	n := int(t.used[ci])
	if n >= t.capac[k] {
		panic(fmt.Sprintf("mrt: slot %d cluster %d %v over capacity", s, cluster, k))
	}
	t.cellOcc(s, cluster, k)[n] = int32(node)
	t.used[ci] = int32(n + 1)
	t.usage[cluster*machine.NumFUKinds+int(k)]++
	t.pos[node] = int32(ci)
}

// Remove releases the node's unit. It panics if the node is not placed.
//
//dms:hotpath
func (t *Table) Remove(node int) {
	if node >= len(t.pos) || t.pos[node] < 0 {
		panic(fmt.Sprintf("mrt: node %d not placed", node))
	}
	ci := int(t.pos[node])
	t.pos[node] = -1
	k := machine.FUKind(ci % machine.NumFUKinds)
	cluster := (ci / machine.NumFUKinds) % t.clusters
	slot := ci / (machine.NumFUKinds * t.clusters)
	cell := t.cellOcc(slot, cluster, k)
	n := int(t.used[ci])
	for i := 0; i < n; i++ {
		if cell[i] == int32(node) {
			copy(cell[i:n-1], cell[i+1:n]) // preserve placement order
			t.used[ci] = int32(n - 1)
			t.usage[cluster*machine.NumFUKinds+int(k)]--
			return
		}
	}
	panic(fmt.Sprintf("mrt: node %d missing from its slot", node))
}

// Placed reports whether the node currently books a unit.
//
//dms:hotpath
func (t *Table) Placed(node int) bool {
	return node < len(t.pos) && t.pos[node] >= 0
}

// KindUsage returns the number of booked units of kind k in the cluster
// across all II slots.
//
//dms:hotpath
func (t *Table) KindUsage(cluster int, k machine.FUKind) int {
	return int(t.usage[cluster*machine.NumFUKinds+int(k)])
}

// FreeKindSlots returns the number of free unit-slots of kind k in the
// cluster across all II slots — the quantity DMS maximises when it
// selects among chain options ("maximizes the number of free slots left
// available to schedule move operations", paper §3).
//
//dms:hotpath
func (t *Table) FreeKindSlots(cluster int, k machine.FUKind) int {
	return t.ii*t.capac[k] - t.KindUsage(cluster, k)
}
