// Package ims implements Rau's Iterative Modulo Scheduling (IMS,
// "Iterative Modulo Scheduling", International Journal of Parallel
// Programming, 1996) — the base algorithm DMS extends and the
// unclustered baseline of the paper's evaluation.
//
// IMS schedules one loop iteration at a candidate initiation interval
// II, starting at MII = max(ResMII, RecMII). Operations are placed in
// decreasing height order. Each operation searches the II-wide window
// starting at its earliest dependence-feasible time for a
// resource-conflict-free slot; if none exists it is placed anyway
// (forced) and conflicting operations are unscheduled and retried. A
// budget bounds the total number of placements; when it is exhausted,
// II is incremented and scheduling restarts.
package ims

import (
	"context"
	"fmt"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/schedule"
)

// DefaultBudgetRatio is the scheduling-attempts budget per operation;
// Rau reports ratios in the 2..6 range work well, and the evaluation
// uses the generous end so II increases reflect real resource or
// recurrence pressure rather than a starved search.
const DefaultBudgetRatio = 6

// Options tune the scheduler.
type Options struct {
	// BudgetRatio bounds scheduling attempts at BudgetRatio × ops per
	// candidate II. 0 means DefaultBudgetRatio.
	BudgetRatio int
	// MaxII caps the candidate initiation interval. 0 derives a safe
	// bound (sum of edge delays + number of operations) at which any
	// loop schedules trivially.
	MaxII int
}

func (o Options) budgetRatio() int {
	if o.BudgetRatio <= 0 {
		return DefaultBudgetRatio
	}
	return o.BudgetRatio
}

// Stats reports how the scheduler worked.
type Stats struct {
	MII        int // lower bound it started from
	II         int // achieved initiation interval
	IIsTried   int // candidate IIs attempted
	Placements int // total placement operations across all IIs
	Evictions  int // operations unscheduled by backtracking
}

// MaxIIBound returns the default MaxII for a graph: the sequential-
// schedule II at which no backtracking is ever needed.
func MaxIIBound(g *ddg.Graph) int {
	sum := g.NumNodes()
	g.Edges(func(e ddg.Edge) { sum += e.Delay })
	return sum
}

// Schedule modulo-schedules the graph on an unclustered machine
// (m.Clusters must be 1; clustered machines need DMS). The graph is
// not modified.
func Schedule(g *ddg.Graph, m *machine.Machine, opt Options) (*schedule.Schedule, Stats, error) {
	return ScheduleCtx(context.Background(), g, m, opt) //dms:ctxok documented ctx-less compatibility wrapper around ScheduleCtx
}

// ScheduleCtx is Schedule with cooperative cancellation: the II search
// checks ctx between candidate IIs and periodically inside each
// attempt's budget loop, so a canceled context aborts within one
// candidate II. The returned error wraps ctx.Err() so callers can
// distinguish cancellation from scheduling failure with errors.Is.
func ScheduleCtx(ctx context.Context, g *ddg.Graph, m *machine.Machine, opt Options) (*schedule.Schedule, Stats, error) {
	var st Stats
	if m.Clusters != 1 {
		return nil, st, fmt.Errorf("ims: machine %s has %d clusters; IMS handles unclustered machines only", m.Name, m.Clusters)
	}
	if err := m.Validate(); err != nil {
		return nil, st, err
	}
	mii, err := g.MII(m)
	if err != nil {
		return nil, st, err
	}
	st.MII = mii
	maxII := opt.MaxII
	if maxII <= 0 {
		maxII = MaxIIBound(g)
	}
	if maxII < mii {
		maxII = mii
	}
	// II-invariant state is computed once and reused across candidate
	// IIs: IMS never mutates the graph, so the node set, scratch
	// buffers, schedule storage and ready queue all survive — only the
	// heights are II-dependent and are recomputed into a reused buffer.
	sr := &searcher{
		g:              g,
		m:              m,
		ids:            g.NodeIDs(),
		prevTime:       make([]int, g.NumIDs()),
		neverScheduled: make([]bool, g.NumIDs()),
		q:              schedule.NewQueue(),
	}
	for ii := mii; ii <= maxII; ii++ {
		if err := ctx.Err(); err != nil {
			return nil, st, fmt.Errorf("ims: %s on %s: %w", g.Name(), m.Name, err)
		}
		st.IIsTried++
		s, ok := sr.tryII(ctx, ii, opt.budgetRatio(), &st)
		if ok {
			st.II = ii
			return s, st, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, st, fmt.Errorf("ims: %s on %s: %w", g.Name(), m.Name, err)
	}
	return nil, st, fmt.Errorf("ims: %s did not schedule within MaxII %d", g.Name(), maxII)
}

// searcher holds the II-invariant state of one scheduling run plus the
// per-II scratch that is rewound rather than reallocated.
type searcher struct {
	g              *ddg.Graph
	m              *machine.Machine
	ids            []int
	s              *schedule.Schedule
	heights        []int
	prevTime       []int
	neverScheduled []bool
	q              *schedule.Queue
}

// tryII attempts one candidate II. It returns ok=false when the budget
// is exhausted or the context is canceled (the caller re-checks ctx).
func (sr *searcher) tryII(ctx context.Context, ii, budgetRatio int, st *Stats) (*schedule.Schedule, bool) {
	g := sr.g
	if sr.s == nil {
		sr.s = schedule.New(g, sr.m, ii)
	} else {
		sr.s.Reset(ii)
	}
	s := sr.s
	sr.heights = g.HeightsInto(ii, sr.heights)
	heights := sr.heights
	prevTime, neverScheduled := sr.prevTime, sr.neverScheduled
	for i := range neverScheduled {
		neverScheduled[i] = true
	}

	q := sr.q
	q.Reset()
	for _, n := range sr.ids {
		q.Push(n, heights[n])
	}
	budget := budgetRatio * len(sr.ids)

	for q.Len() > 0 {
		if budget == 0 {
			return nil, false
		}
		if budget&63 == 0 && ctx.Err() != nil {
			return nil, false
		}
		budget--
		op := q.Pop()
		st.Placements++

		estart := earliestStart(g, s, op, ii)
		timeSlot, found := findSlot(g, s, op, estart, ii)
		forced := false
		if !found {
			forced = true
			timeSlot = estart
			if !neverScheduled[op] && prevTime[op]+1 > timeSlot {
				timeSlot = prevTime[op] + 1
			}
		}

		if forced {
			// Make room: evict the lowest-priority occupant(s) of the
			// target slot.
			kind := g.Node(op).Class.FU()
			for !s.Table().Free(timeSlot, 0, g.Node(op).Class) {
				victim := lowestPriority(s.Table().Occupants(timeSlot, 0, kind), heights)
				s.Evict(victim)
				q.Push(victim, heights[victim])
				st.Evictions++
			}
		}
		s.Place(op, schedule.Placement{Time: timeSlot, Cluster: 0})
		prevTime[op] = timeSlot
		neverScheduled[op] = false

		// Unschedule successors whose dependence constraints the new
		// placement violates (their earliest start moved past them).
		for _, eid := range g.OutEdgeIDs(op) {
			if !g.EdgeAlive(eid) {
				continue
			}
			e := g.EdgeAt(eid)
			if e.To == op {
				continue
			}
			if p, ok := s.At(e.To); ok && p.Time < timeSlot+e.Delay-ii*e.Distance {
				s.Evict(e.To)
				q.Push(e.To, heights[e.To])
				st.Evictions++
			}
		}
	}
	return s, true
}

// earliestStart returns the smallest dependence-feasible issue time of
// op given its currently scheduled predecessors.
func earliestStart(g *ddg.Graph, s *schedule.Schedule, op, ii int) int {
	estart := 0
	for _, eid := range g.InEdgeIDs(op) {
		if !g.EdgeAlive(eid) {
			continue
		}
		e := g.EdgeAt(eid)
		if e.From == op {
			continue // self edges are satisfied by II ≥ RecMII
		}
		if p, ok := s.At(e.From); ok {
			if t := p.Time + e.Delay - ii*e.Distance; t > estart {
				estart = t
			}
		}
	}
	return estart
}

// findSlot scans the II-wide window for a resource-free slot.
func findSlot(g *ddg.Graph, s *schedule.Schedule, op, estart, ii int) (int, bool) {
	class := g.Node(op).Class
	for t := estart; t < estart+ii; t++ {
		if s.Table().Free(t, 0, class) {
			return t, true
		}
	}
	return 0, false
}

// lowestPriority picks the eviction victim: the occupant with the
// smallest height (ties broken toward the larger node ID, i.e. the one
// scheduled with less downstream work).
func lowestPriority(occupants []int, heights []int) int {
	victim := occupants[0]
	for _, n := range occupants[1:] {
		hn, hv := heightOf(n, heights), heightOf(victim, heights)
		if hn < hv || (hn == hv && n > victim) {
			victim = n
		}
	}
	return victim
}

func heightOf(n int, heights []int) int {
	if n < len(heights) {
		return heights[n]
	}
	return int(^uint(0) >> 1) // nodes added after height computation (moves) rank highest
}
