package ims

import (
	"testing"

	"repro/internal/ddg"
	"repro/internal/loop"
	"repro/internal/machine"
	"repro/internal/perfect"
	"repro/internal/schedule"
)

func lat() machine.Latencies { return machine.DefaultLatencies() }

func TestScheduleDotNarrow(t *testing.T) {
	g := ddg.FromLoop(perfect.KernelDot(), lat())
	m := machine.Unclustered(1)
	s, st, err := Schedule(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.Verify(s); err != nil {
		t.Fatal(err)
	}
	// dot has 3 memory ops on 1 L/S unit: II must be exactly ResMII 3.
	if st.II != 3 {
		t.Errorf("II = %d, want 3", st.II)
	}
	if st.MII != 3 || st.IIsTried != 1 {
		t.Errorf("MII=%d IIsTried=%d, want 3 and 1", st.MII, st.IIsTried)
	}
}

func TestScheduleDotWide(t *testing.T) {
	g := ddg.FromLoop(perfect.KernelDot(), lat())
	m := machine.Unclustered(3)
	s, st, err := Schedule(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.Verify(s); err != nil {
		t.Fatal(err)
	}
	if st.II != 1 {
		t.Errorf("II = %d, want 1 (accumulator recurrence has delay 1)", st.II)
	}
}

func TestScheduleRecurrenceBound(t *testing.T) {
	// lk5 tridiag: x = z*(y - x@1): cycle delay mul+add = 4.
	g := ddg.FromLoop(perfect.KernelLivermoreTridiag(), lat())
	m := machine.Unclustered(10)
	s, st, err := Schedule(g, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.Verify(s); err != nil {
		t.Fatal(err)
	}
	want := lat().Of(machine.Mul) + lat().Of(machine.Add)
	if st.II != want {
		t.Errorf("II = %d, want recurrence bound %d regardless of width", st.II, want)
	}
}

func TestScheduleRejectsClusteredMachine(t *testing.T) {
	g := ddg.FromLoop(perfect.KernelDot(), lat())
	if _, _, err := Schedule(g, machine.Clustered(4), Options{}); err == nil {
		t.Fatal("IMS accepted a clustered machine")
	}
}

func TestScheduleAllKernels(t *testing.T) {
	for _, k := range perfect.Kernels() {
		for _, width := range []int{1, 2, 4, 8} {
			g := ddg.FromLoop(k, lat())
			m := machine.Unclustered(width)
			s, st, err := Schedule(g, m, Options{})
			if err != nil {
				t.Fatalf("%s width %d: %v", k.Name, width, err)
			}
			if err := schedule.Verify(s); err != nil {
				t.Fatalf("%s width %d: %v", k.Name, width, err)
			}
			mii, _ := g.MII(m)
			if st.II < mii {
				t.Fatalf("%s width %d: II %d below MII %d", k.Name, width, st.II, mii)
			}
		}
	}
}

func TestScheduleCorpusSample(t *testing.T) {
	loops := perfect.CorpusN(perfect.DefaultSeed, 120)
	for _, l := range loops {
		for _, width := range []int{1, 3, 7} {
			g := ddg.FromLoop(l, lat())
			m := machine.Unclustered(width)
			s, st, err := Schedule(g, m, Options{})
			if err != nil {
				t.Fatalf("%s width %d: %v", l.Name, width, err)
			}
			if err := schedule.Verify(s); err != nil {
				t.Fatalf("%s width %d: %v", l.Name, width, err)
			}
			mii, _ := g.MII(m)
			if st.II < mii {
				t.Fatalf("%s width %d: II %d < MII %d", l.Name, width, st.II, mii)
			}
		}
	}
}

func TestWiderMachineNeverHurtsII(t *testing.T) {
	loops := perfect.CorpusN(perfect.DefaultSeed, 60)
	for _, l := range loops {
		g := ddg.FromLoop(l, lat())
		prev := -1
		for _, width := range []int{1, 2, 4, 8} {
			_, st, err := Schedule(g, machine.Unclustered(width), Options{})
			if err != nil {
				t.Fatalf("%s width %d: %v", l.Name, width, err)
			}
			if prev >= 0 && st.II > prev {
				t.Errorf("%s: II rose from %d to %d when widening to %d", l.Name, prev, st.II, width)
			}
			prev = st.II
		}
	}
}

func TestTightBudgetStillSchedules(t *testing.T) {
	for _, l := range perfect.CorpusN(perfect.DefaultSeed, 40) {
		g := ddg.FromLoop(l, lat())
		s, _, err := Schedule(g, machine.Unclustered(2), Options{BudgetRatio: 1})
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if err := schedule.Verify(s); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
	}
}

func TestUnrolledLoopsSchedule(t *testing.T) {
	for _, k := range perfect.Kernels()[:6] {
		u, err := loop.Unroll(k, 4)
		if err != nil {
			t.Fatal(err)
		}
		g := ddg.FromLoop(u, lat())
		s, _, err := Schedule(g, machine.Unclustered(4), Options{})
		if err != nil {
			t.Fatalf("%s x4: %v", k.Name, err)
		}
		if err := schedule.Verify(s); err != nil {
			t.Fatalf("%s x4: %v", k.Name, err)
		}
	}
}

func TestMaxIIBound(t *testing.T) {
	g := ddg.FromLoop(perfect.KernelDot(), lat())
	if got := MaxIIBound(g); got <= 0 {
		t.Fatalf("MaxIIBound = %d", got)
	}
	// The bound must actually be schedulable: force it as the only
	// candidate.
	s, _, err := Schedule(g, machine.Unclustered(1), Options{MaxII: MaxIIBound(g)})
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.Verify(s); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	g := ddg.FromLoop(perfect.KernelFIR4(), lat())
	_, st, err := Schedule(g, machine.Unclustered(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Placements < g.NumNodes() {
		t.Errorf("Placements = %d < %d ops", st.Placements, g.NumNodes())
	}
	if st.II < st.MII {
		t.Errorf("II %d below MII %d", st.II, st.MII)
	}
}
