package machine

import (
	"bytes"
	"strings"
	"testing"
)

func TestConfigRoundTrip(t *testing.T) {
	for _, m := range []*Machine{Clustered(4), Unclustered(7), ClusteredWithCopyFUs(8, 2)} {
		var buf bytes.Buffer
		if err := WriteConfig(&buf, m); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		back, err := ReadConfig(&buf)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if back.Name != m.Name || back.Clusters != m.Clusters || back.PerCluster != m.PerCluster || back.Lat != m.Lat {
			t.Fatalf("%s: round trip changed machine:\n%+v\n%+v", m.Name, m, back)
		}
	}
}

func TestConfigDefaultsLatencies(t *testing.T) {
	m, err := ReadConfig(strings.NewReader(`{
  "name": "tiny",
  "clusters": 2,
  "units_per_cluster": {"mem": 1, "add": 1, "mul": 1, "copy": 1}
}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Lat != DefaultLatencies() {
		t.Errorf("omitted latencies did not default: %+v", m.Lat)
	}
}

func TestConfigPartialLatencyOverride(t *testing.T) {
	m, err := ReadConfig(strings.NewReader(`{
  "name": "slowmul",
  "clusters": 1,
  "units_per_cluster": {"mem": 1, "add": 1, "mul": 1},
  "latencies": {"mul": 5}
}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Lat.Of(Mul) != 5 {
		t.Errorf("mul latency = %d, want 5", m.Lat.Of(Mul))
	}
	if m.Lat.Of(Load) != DefaultLatencies().Of(Load) {
		t.Error("unmentioned latencies must keep defaults")
	}
}

func TestConfigErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"unknown unit":  `{"name":"x","clusters":1,"units_per_cluster":{"fpu":1}}`,
		"unknown class": `{"name":"x","clusters":1,"units_per_cluster":{"add":1},"latencies":{"frob":1}}`,
		"no clusters":   `{"name":"x","clusters":0,"units_per_cluster":{"add":1}}`,
		"no units":      `{"name":"x","clusters":2,"units_per_cluster":{"copy":1}}`,
	}
	for name, text := range cases {
		if _, err := ReadConfig(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}
