package machine

import (
	"encoding/json"
	"fmt"
	"io"
)

// config is the JSON wire form of a Machine. Latencies and unit counts
// are keyed by mnemonic so files stay readable and stable if the
// internal enums move.
type config struct {
	Name       string         `json:"name"`
	Clusters   int            `json:"clusters"`
	PerCluster map[string]int `json:"units_per_cluster"`
	Latencies  map[string]int `json:"latencies"`
}

var fuKindKeys = map[string]FUKind{
	"mem":  FUMem,
	"add":  FUAdd,
	"mul":  FUMul,
	"copy": FUCopy,
}

// MarshalJSON encodes the machine in the textual config format.
func (m *Machine) MarshalJSON() ([]byte, error) {
	c := config{
		Name:       m.Name,
		Clusters:   m.Clusters,
		PerCluster: make(map[string]int, NumFUKinds),
		Latencies:  make(map[string]int, NumOpClasses),
	}
	for key, k := range fuKindKeys {
		c.PerCluster[key] = m.PerCluster[k]
	}
	for cl := OpClass(0); cl < NumOpClasses; cl++ {
		c.Latencies[cl.String()] = m.Lat[cl]
	}
	return json.MarshalIndent(c, "", "  ")
}

// UnmarshalJSON decodes the textual config format. Omitted latency
// entries fall back to the defaults; omitted unit counts to zero.
func (m *Machine) UnmarshalJSON(data []byte) error {
	var c config
	if err := json.Unmarshal(data, &c); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	m.Name = c.Name
	m.Clusters = c.Clusters
	m.PerCluster = [NumFUKinds]int{}
	for key, n := range c.PerCluster {
		k, ok := fuKindKeys[key]
		if !ok {
			return fmt.Errorf("machine: unknown unit kind %q (want mem, add, mul or copy)", key)
		}
		m.PerCluster[k] = n
	}
	m.Lat = DefaultLatencies()
	for key, n := range c.Latencies {
		cl, err := ParseOpClass(key)
		if err != nil {
			return err
		}
		m.Lat[cl] = n
	}
	return nil
}

// ReadConfig parses and validates a machine description.
func ReadConfig(r io.Reader) (*Machine, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	m := &Machine{}
	if err := m.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteConfig emits the machine description.
func WriteConfig(w io.Writer, m *Machine) error {
	data, err := m.MarshalJSON()
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
