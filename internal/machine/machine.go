// Package machine models the clustered VLIW architecture targeted by
// distributed modulo scheduling (Fernandes, Llosa, Topham; HPCA 1999).
//
// The machine is a collection of identical clusters connected in a
// bi-directional ring. Each cluster holds a small set of functional
// units (a load/store unit, an adder, a multiplier and a copy unit), a
// local queue register file (LRF), and shares one communication queue
// register file (CQRF) with each of its two ring neighbours. Values
// move between directly-connected clusters with fixed timing and no
// explicit instruction: the producer writes the CQRF and the consumer
// reads it. Values that must travel further are forwarded by explicit
// move operations executing on the copy units of intermediate clusters.
//
// The package also models the unclustered reference machine used by the
// paper's evaluation: the same functional units pooled behind a single
// central register file with no communication constraints.
package machine

import (
	"errors"
	"fmt"
)

// FUKind identifies a class of functional unit within a cluster.
type FUKind int

const (
	// FUMem executes loads and stores (the paper's "L/S" unit).
	FUMem FUKind = iota
	// FUAdd executes additions, subtractions, comparisons and other
	// single-cycle integer/FP ALU operations.
	FUAdd
	// FUMul executes multiplies and divides.
	FUMul
	// FUCopy executes copy and move operations. Copy units perform no
	// useful computation and are excluded from performance accounting,
	// but they occupy schedule slots and can bound the II (paper §4).
	FUCopy

	// NumFUKinds is the number of distinct functional unit kinds.
	NumFUKinds = iota
)

var fuKindNames = [NumFUKinds]string{"L/S", "ADD", "MUL", "COPY"}

// String returns the paper's name for the unit kind.
func (k FUKind) String() string {
	if k < 0 || int(k) >= NumFUKinds {
		return fmt.Sprintf("FUKind(%d)", int(k))
	}
	return fuKindNames[k]
}

// OpClass identifies the semantic class of a machine operation. The
// class determines both the functional unit kind that executes the
// operation and its latency.
type OpClass int

const (
	// Load reads a value from memory.
	Load OpClass = iota
	// Store writes a value to memory. Stores produce no register value.
	Store
	// Add covers additions, subtractions, logic and compare operations.
	Add
	// Mul is a multiply.
	Mul
	// Div is a divide (executes on the multiplier unit).
	Div
	// Copy duplicates a register value inside a cluster. Copies are
	// inserted by the pre-scheduling pass that limits every operation
	// to at most two immediate data-dependent successors (paper §3).
	Copy
	// Move forwards a value between adjacent clusters: it reads one
	// CQRF and writes the next one. Chains of moves implement
	// communication between indirectly-connected clusters (paper §3).
	Move

	// NumOpClasses is the number of operation classes.
	NumOpClasses = iota
)

var opClassNames = [NumOpClasses]string{"load", "store", "add", "mul", "div", "copy", "move"}

// String returns the lower-case mnemonic of the class, as used by the
// textual loop format.
func (c OpClass) String() string {
	if c < 0 || int(c) >= NumOpClasses {
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
	return opClassNames[c]
}

// ParseOpClass converts a mnemonic (as produced by OpClass.String) back
// into an OpClass.
func ParseOpClass(s string) (OpClass, error) {
	for i, n := range opClassNames {
		if n == s {
			return OpClass(i), nil
		}
	}
	return 0, fmt.Errorf("machine: unknown operation class %q", s)
}

// FU returns the functional unit kind that executes the class.
func (c OpClass) FU() FUKind {
	switch c {
	case Load, Store:
		return FUMem
	case Add:
		return FUAdd
	case Mul, Div:
		return FUMul
	case Copy, Move:
		return FUCopy
	default:
		panic(fmt.Sprintf("machine: invalid op class %d", int(c)))
	}
}

// Useful reports whether operations of this class perform computation
// that counts toward the paper's performance figures. Copy and move
// operations do not (paper §4: "these functional units and operations
// are not considered to estimate performance figures").
func (c OpClass) Useful() bool { return c != Copy && c != Move }

// Produces reports whether operations of this class define a register
// value that downstream operations can consume.
func (c OpClass) Produces() bool { return c != Store }

// Latencies holds the cycle latency of each operation class. The paper
// does not publish its latency table; the defaults are classic VLIW
// values (cf. the HP Labs PlayDoh model used by Rau's IMS paper).
type Latencies [NumOpClasses]int

// DefaultLatencies returns the latency model used throughout the
// reproduction: load 2, store 1, add 1, mul 3, div 8, copy 1, move 1.
func DefaultLatencies() Latencies {
	var l Latencies
	l[Load] = 2
	l[Store] = 1
	l[Add] = 1
	l[Mul] = 3
	l[Div] = 8
	l[Copy] = 1
	l[Move] = 1
	return l
}

// Of returns the latency of the class.
func (l Latencies) Of(c OpClass) int { return l[c] }

// Validate checks that every class has a positive latency.
func (l Latencies) Validate() error {
	for c := OpClass(0); c < NumOpClasses; c++ {
		if l[c] <= 0 {
			return fmt.Errorf("machine: class %v has non-positive latency %d", c, l[c])
		}
	}
	return nil
}

// Machine describes one machine configuration: a number of clusters,
// the per-cluster functional unit counts, and the latency model. The
// zero value is not a valid machine; use Clustered, Unclustered or
// New.
type Machine struct {
	// Name labels the configuration in reports.
	Name string
	// Clusters is the number of clusters in the ring (≥ 1). An
	// unclustered machine is modelled as a single cluster holding the
	// pooled functional units.
	Clusters int
	// PerCluster holds the number of functional units of each kind in
	// every cluster (clusters are homogeneous, as in the paper).
	PerCluster [NumFUKinds]int
	// Lat is the latency model.
	Lat Latencies
}

// Clustered returns the paper's clustered configuration with c
// clusters, each holding 1 L/S, 1 ADD, 1 MUL and 1 COPY unit.
func Clustered(c int) *Machine {
	m := &Machine{
		Name:     fmt.Sprintf("clustered-%d", c),
		Clusters: c,
		Lat:      DefaultLatencies(),
	}
	m.PerCluster[FUMem] = 1
	m.PerCluster[FUAdd] = 1
	m.PerCluster[FUMul] = 1
	m.PerCluster[FUCopy] = 1
	return m
}

// ClusteredWithCopyFUs returns a clustered configuration with extra
// copy units per cluster, the "additional hardware support" the paper
// suggests for wide configurations (§4, §5).
func ClusteredWithCopyFUs(c, copyFUs int) *Machine {
	m := Clustered(c)
	m.Name = fmt.Sprintf("clustered-%d-copy%d", c, copyFUs)
	m.PerCluster[FUCopy] = copyFUs
	return m
}

// Unclustered returns the unclustered reference machine equivalent to c
// clusters: a single cluster with c L/S, c ADD and c MUL units, a
// central register file and no copy unit (no copies or moves are ever
// needed).
func Unclustered(c int) *Machine {
	m := &Machine{
		Name:     fmt.Sprintf("unclustered-%dfu", 3*c),
		Clusters: 1,
		Lat:      DefaultLatencies(),
	}
	m.PerCluster[FUMem] = c
	m.PerCluster[FUAdd] = c
	m.PerCluster[FUMul] = c
	return m
}

// New returns a machine with explicit parameters.
func New(name string, clusters int, perCluster [NumFUKinds]int, lat Latencies) *Machine {
	return &Machine{Name: name, Clusters: clusters, PerCluster: perCluster, Lat: lat}
}

// Validate checks the structural invariants of the configuration.
func (m *Machine) Validate() error {
	if m.Clusters < 1 {
		return fmt.Errorf("machine %s: must have at least one cluster, got %d", m.Name, m.Clusters)
	}
	for k := FUKind(0); int(k) < NumFUKinds; k++ {
		if m.PerCluster[k] < 0 {
			return fmt.Errorf("machine %s: negative %v unit count", m.Name, k)
		}
	}
	if m.PerCluster[FUMem]+m.PerCluster[FUAdd]+m.PerCluster[FUMul] == 0 {
		return errors.New("machine " + m.Name + ": no useful functional units")
	}
	return m.Lat.Validate()
}

// Capacity returns the number of functional units of kind k available
// in the given cluster (clusters are homogeneous, so the cluster index
// only participates in bounds checking).
func (m *Machine) Capacity(cluster int, k FUKind) int {
	if cluster < 0 || cluster >= m.Clusters {
		panic(fmt.Sprintf("machine %s: cluster %d out of range [0,%d)", m.Name, cluster, m.Clusters))
	}
	return m.PerCluster[k]
}

// TotalFUs returns the machine-wide number of functional units of kind k.
func (m *Machine) TotalFUs(k FUKind) int { return m.Clusters * m.PerCluster[k] }

// UsefulFUs returns the machine-wide number of functional units that
// perform useful computation (everything except copy units). This is
// the x-axis of the paper's Figures 5 and 6.
func (m *Machine) UsefulFUs() int {
	return m.TotalFUs(FUMem) + m.TotalFUs(FUAdd) + m.TotalFUs(FUMul)
}

// String returns a short description of the configuration.
func (m *Machine) String() string {
	return fmt.Sprintf("%s: %d cluster(s) × [%d %v, %d %v, %d %v, %d %v]",
		m.Name, m.Clusters,
		m.PerCluster[FUMem], FUMem, m.PerCluster[FUAdd], FUAdd,
		m.PerCluster[FUMul], FUMul, m.PerCluster[FUCopy], FUCopy)
}
