package machine

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFUKindString(t *testing.T) {
	cases := map[FUKind]string{FUMem: "L/S", FUAdd: "ADD", FUMul: "MUL", FUCopy: "COPY"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("FUKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := FUKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("out-of-range FUKind string = %q", got)
	}
}

func TestOpClassString(t *testing.T) {
	for c := OpClass(0); c < NumOpClasses; c++ {
		s := c.String()
		back, err := ParseOpClass(s)
		if err != nil {
			t.Fatalf("ParseOpClass(%q): %v", s, err)
		}
		if back != c {
			t.Errorf("round trip %v -> %q -> %v", c, s, back)
		}
	}
	if _, err := ParseOpClass("bogus"); err == nil {
		t.Error("ParseOpClass accepted bogus mnemonic")
	}
}

func TestOpClassFU(t *testing.T) {
	cases := map[OpClass]FUKind{
		Load: FUMem, Store: FUMem,
		Add: FUAdd,
		Mul: FUMul, Div: FUMul,
		Copy: FUCopy, Move: FUCopy,
	}
	for c, want := range cases {
		if got := c.FU(); got != want {
			t.Errorf("%v.FU() = %v, want %v", c, got, want)
		}
	}
}

func TestOpClassUseful(t *testing.T) {
	for c := OpClass(0); c < NumOpClasses; c++ {
		want := c != Copy && c != Move
		if got := c.Useful(); got != want {
			t.Errorf("%v.Useful() = %v, want %v", c, got, want)
		}
	}
}

func TestOpClassProduces(t *testing.T) {
	if Store.Produces() {
		t.Error("store must not produce a register value")
	}
	for _, c := range []OpClass{Load, Add, Mul, Div, Copy, Move} {
		if !c.Produces() {
			t.Errorf("%v must produce a value", c)
		}
	}
}

func TestDefaultLatencies(t *testing.T) {
	l := DefaultLatencies()
	if err := l.Validate(); err != nil {
		t.Fatalf("default latencies invalid: %v", err)
	}
	if l.Of(Load) != 2 || l.Of(Mul) != 3 || l.Of(Add) != 1 {
		t.Errorf("unexpected default latencies: %+v", l)
	}
	var zero Latencies
	if err := zero.Validate(); err == nil {
		t.Error("zero latencies should not validate")
	}
}

func TestClusteredConfiguration(t *testing.T) {
	for c := 1; c <= 10; c++ {
		m := Clustered(c)
		if err := m.Validate(); err != nil {
			t.Fatalf("Clustered(%d): %v", c, err)
		}
		if m.Clusters != c {
			t.Errorf("Clustered(%d).Clusters = %d", c, m.Clusters)
		}
		if got := m.UsefulFUs(); got != 3*c {
			t.Errorf("Clustered(%d).UsefulFUs() = %d, want %d", c, got, 3*c)
		}
		if got := m.TotalFUs(FUCopy); got != c {
			t.Errorf("Clustered(%d) copy units = %d, want %d", c, got, c)
		}
	}
}

func TestUnclusteredConfiguration(t *testing.T) {
	for c := 1; c <= 10; c++ {
		m := Unclustered(c)
		if err := m.Validate(); err != nil {
			t.Fatalf("Unclustered(%d): %v", c, err)
		}
		if m.Clusters != 1 {
			t.Errorf("Unclustered(%d).Clusters = %d, want 1", c, m.Clusters)
		}
		if got := m.UsefulFUs(); got != 3*c {
			t.Errorf("Unclustered(%d).UsefulFUs() = %d, want %d", c, got, 3*c)
		}
		if got := m.TotalFUs(FUCopy); got != 0 {
			t.Errorf("Unclustered(%d) has %d copy units, want 0", c, got)
		}
	}
}

func TestClusteredWithCopyFUs(t *testing.T) {
	m := ClusteredWithCopyFUs(4, 2)
	if got := m.Capacity(0, FUCopy); got != 2 {
		t.Errorf("copy capacity = %d, want 2", got)
	}
	if got := m.UsefulFUs(); got != 12 {
		t.Errorf("UsefulFUs = %d, want 12 (copy units excluded)", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []*Machine{
		{Name: "no-clusters", Clusters: 0, Lat: DefaultLatencies()},
		{Name: "no-fus", Clusters: 1, Lat: DefaultLatencies()},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted invalid machine", m.Name)
		}
	}
	neg := Clustered(2)
	neg.PerCluster[FUAdd] = -1
	if err := neg.Validate(); err == nil {
		t.Error("Validate() accepted negative unit count")
	}
}

func TestCapacityBounds(t *testing.T) {
	m := Clustered(3)
	if got := m.Capacity(2, FUMul); got != 1 {
		t.Errorf("Capacity(2, MUL) = %d, want 1", got)
	}
	mustPanic(t, "out-of-range cluster", func() { m.Capacity(3, FUMul) })
	mustPanic(t, "negative cluster", func() { m.Capacity(-1, FUMul) })
}

func TestString(t *testing.T) {
	s := Clustered(4).String()
	for _, want := range []string{"clustered-4", "4 cluster", "L/S", "COPY"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

// Ring metric properties, checked over random cluster counts and pairs.
func TestRingDistanceProperties(t *testing.T) {
	prop := func(rawC, rawA, rawB uint8) bool {
		c := int(rawC%10) + 1
		m := Clustered(c)
		a, b := int(rawA)%c, int(rawB)%c
		d := m.RingDistance(a, b)
		// Symmetry, identity, and bound c/2.
		if d != m.RingDistance(b, a) {
			return false
		}
		if (d == 0) != (a == b) {
			return false
		}
		return d <= c/2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRingDistanceTriangleInequality(t *testing.T) {
	prop := func(rawC, rawA, rawB, rawX uint8) bool {
		c := int(rawC%10) + 1
		m := Clustered(c)
		a, b, x := int(rawA)%c, int(rawB)%c, int(rawX)%c
		return m.RingDistance(a, b) <= m.RingDistance(a, x)+m.RingDistance(x, b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAdjacencySmallRings(t *testing.T) {
	// Rings of up to 3 clusters are fully connected; that is why the
	// paper sees no communication conflicts below 4 clusters (§4).
	for c := 1; c <= 3; c++ {
		m := Clustered(c)
		for a := 0; a < c; a++ {
			for b := 0; b < c; b++ {
				if !m.Adjacent(a, b) {
					t.Errorf("%d clusters: %d and %d should be adjacent", c, a, b)
				}
			}
		}
	}
	m := Clustered(4)
	if m.Adjacent(0, 2) {
		t.Error("4 clusters: 0 and 2 must not be adjacent")
	}
	if !m.Adjacent(0, 3) {
		t.Error("4 clusters: 0 and 3 wrap around the ring and are adjacent")
	}
}

func TestNeighbour(t *testing.T) {
	m := Clustered(5)
	if got := m.Neighbour(4, +1); got != 0 {
		t.Errorf("Neighbour(4,+1) = %d, want 0", got)
	}
	if got := m.Neighbour(0, -1); got != 4 {
		t.Errorf("Neighbour(0,-1) = %d, want 4", got)
	}
	mustPanic(t, "bad direction", func() { m.Neighbour(0, 2) })
}

func TestChainPathsSameCluster(t *testing.T) {
	m := Clustered(4)
	ps := m.ChainPaths(2, 2)
	if len(ps) != 1 || ps[0].Moves() != 0 {
		t.Fatalf("ChainPaths(2,2) = %+v, want single empty path", ps)
	}
}

func TestChainPathsAdjacent(t *testing.T) {
	m := Clustered(6)
	ps := m.ChainPaths(0, 1)
	if len(ps) != 2 {
		t.Fatalf("want two directional paths, got %d", len(ps))
	}
	if ps[0].Moves() != 0 {
		t.Errorf("shortest path to an adjacent cluster needs %d moves, want 0", ps[0].Moves())
	}
	if ps[1].Moves() != 4 {
		t.Errorf("long way round needs %d moves, want 4", ps[1].Moves())
	}
}

func TestChainPathsOpposite(t *testing.T) {
	m := Clustered(6)
	ps := m.ChainPaths(0, 3)
	if len(ps) != 2 {
		t.Fatalf("want two paths, got %d", len(ps))
	}
	// Both directions need exactly 2 moves but traverse different
	// clusters — the flexibility the bi-directional ring provides.
	if ps[0].Moves() != 2 || ps[1].Moves() != 2 {
		t.Errorf("moves = %d,%d, want 2,2", ps[0].Moves(), ps[1].Moves())
	}
	if ps[0].Via[0] == ps[1].Via[0] {
		t.Error("the two directions should route through different clusters")
	}
}

// Each path must walk the ring one hop at a time from Src to Dst, and
// the two directions together must cover every other cluster exactly
// once.
func TestChainPathsProperties(t *testing.T) {
	prop := func(rawC, rawS, rawD uint8) bool {
		c := int(rawC%10) + 1
		m := Clustered(c)
		src, dst := int(rawS)%c, int(rawD)%c
		paths := m.ChainPaths(src, dst)
		if src == dst {
			return len(paths) == 1 && paths[0].Moves() == 0
		}
		if len(paths) != 2 {
			return false
		}
		seen := map[int]int{}
		for _, p := range paths {
			cur := src
			for _, v := range p.Via {
				if v != m.Neighbour(cur, p.Dir) {
					return false
				}
				seen[v]++
				cur = v
			}
			if m.Neighbour(cur, p.Dir) != dst {
				return false
			}
			// Moves needed = hop count - 1.
			hops := p.Moves() + 1
			if p.Dir == +1 {
				if hops != ((dst-src)%c+c)%c {
					return false
				}
			} else {
				if hops != ((src-dst)%c+c)%c {
					return false
				}
			}
		}
		if len(seen) != c-2 {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
