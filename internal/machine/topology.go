package machine

import "fmt"

// RingDistance returns the minimum number of ring hops between clusters
// a and b. Clusters at distance 0 or 1 are directly connected: they
// share a CQRF (or are the same cluster) and can exchange values
// without explicit move operations.
func (m *Machine) RingDistance(a, b int) int {
	m.checkCluster(a)
	m.checkCluster(b)
	d := a - b
	if d < 0 {
		d = -d
	}
	if alt := m.Clusters - d; alt < d {
		d = alt
	}
	return d
}

// Adjacent reports whether clusters a and b are directly connected
// (ring distance ≤ 1). A true data dependence between operations in
// non-adjacent clusters is a communication conflict (paper §2).
func (m *Machine) Adjacent(a, b int) bool { return m.RingDistance(a, b) <= 1 }

// Neighbour returns the cluster reached from c by one hop in direction
// dir (+1 clockwise, -1 counter-clockwise).
func (m *Machine) Neighbour(c, dir int) int {
	m.checkCluster(c)
	if dir != 1 && dir != -1 {
		panic(fmt.Sprintf("machine: invalid ring direction %d", dir))
	}
	return ((c+dir)%m.Clusters + m.Clusters) % m.Clusters
}

// ChainPath describes one way of routing a value from cluster Src to
// cluster Dst around the ring: the sequence of intermediate clusters
// that must each execute one move operation (paper Figure 3). A path
// with no intermediates means the clusters are directly connected.
type ChainPath struct {
	Src, Dst int
	// Dir is +1 (clockwise) or -1 (counter-clockwise).
	Dir int
	// Via lists the intermediate clusters in hop order, excluding Src
	// and Dst. One move operation is required per entry.
	Via []int
}

// Moves returns the number of move operations the path requires.
func (p ChainPath) Moves() int { return len(p.Via) }

// ChainPaths enumerates the candidate routes from cluster src to
// cluster dst. The bi-directional ring gives exactly two options (paper
// Figure 3: "Option 1" and "Option 2"), one per direction, except for
// the degenerate same-cluster case which has a single empty route. The
// shorter route is listed first; equal-length routes are listed
// clockwise first.
func (m *Machine) ChainPaths(src, dst int) []ChainPath {
	m.checkCluster(src)
	m.checkCluster(dst)
	if src == dst {
		return []ChainPath{{Src: src, Dst: dst, Dir: +1}}
	}
	mk := func(dir int) ChainPath {
		p := ChainPath{Src: src, Dst: dst, Dir: dir}
		for c := m.Neighbour(src, dir); c != dst; c = m.Neighbour(c, dir) {
			p.Via = append(p.Via, c)
		}
		return p
	}
	cw, ccw := mk(+1), mk(-1)
	if len(ccw.Via) < len(cw.Via) {
		return []ChainPath{ccw, cw}
	}
	return []ChainPath{cw, ccw}
}

func (m *Machine) checkCluster(c int) {
	if c < 0 || c >= m.Clusters {
		panic(fmt.Sprintf("machine %s: cluster %d out of range [0,%d)", m.Name, c, m.Clusters))
	}
}
