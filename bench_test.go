package repro_test

// Benchmark harness for the paper's evaluation. One benchmark per data
// figure regenerates the figure on a corpus sample and reports the
// headline numbers as custom metrics; micro-benchmarks cover the
// scheduler phases; ablation benchmarks isolate the design choices
// DESIGN.md calls out (chains, bi-directional routing, copy-unit
// count, fan-out limiting).
//
// The full-corpus figures are produced by `go run ./cmd/dmsbench`; the
// benchmarks use a sample so one iteration stays in the hundreds of
// milliseconds.

import (
	"context"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/experiment"
	"repro/internal/ims"
	"repro/internal/lifetime"
	"repro/internal/machine"
	"repro/internal/perfect"
	"repro/internal/sms"
	"repro/internal/twophase"
	"repro/internal/vliw"
)

const benchSample = 96 // corpus loops per figure-benchmark iteration

// BenchmarkFigure4 regenerates Figure 4 (II increase due to
// partitioning, clusters 1..10) on a corpus sample and reports the
// percentage of loops with an II increase at 8 clusters — the paper's
// headline claim is that it stays below 20%.
func BenchmarkFigure4(b *testing.B) {
	sample := perfect.CorpusN(perfect.DefaultSeed, benchSample)
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(context.Background(), sample, experiment.Clusters, experiment.Config{})
		if err != nil {
			b.Fatal(err)
		}
		rows := res.Figure4()
		b.ReportMetric(rows[7].Pct(), "pct-increased@8c")
		b.ReportMetric(rows[1].Pct(), "pct-increased@2c")
	}
}

// BenchmarkFigure5 regenerates Figure 5 (relative execution cycles)
// and reports the clustered-vs-unclustered cycle ratio at 24 FUs for
// both loop sets.
func BenchmarkFigure5(b *testing.B) {
	sample := perfect.CorpusN(perfect.DefaultSeed, benchSample)
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(context.Background(), sample, experiment.Clusters, experiment.Config{})
		if err != nil {
			b.Fatal(err)
		}
		fig := res.Figure5()
		b.ReportMetric(fig.Set1Clustered[7].Value/fig.Set1Unclustered[7].Value, "set1-ratio@24fu")
		b.ReportMetric(fig.Set2Clustered[7].Value/fig.Set2Unclustered[7].Value, "set2-ratio@24fu")
	}
}

// BenchmarkFigure6 regenerates Figure 6 (IPC) and reports clustered
// IPC at 21 and 30 FUs for set 1 (which the paper says levels off past
// 21 FUs) and at 30 FUs for set 2 (which keeps improving).
func BenchmarkFigure6(b *testing.B) {
	sample := perfect.CorpusN(perfect.DefaultSeed, benchSample)
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(context.Background(), sample, experiment.Clusters, experiment.Config{})
		if err != nil {
			b.Fatal(err)
		}
		fig := res.Figure6()
		b.ReportMetric(fig.Set1Clustered[6].Value, "set1-ipc@21fu")
		b.ReportMetric(fig.Set1Clustered[9].Value, "set1-ipc@30fu")
		b.ReportMetric(fig.Set2Clustered[9].Value, "set2-ipc@30fu")
	}
}

// BenchmarkIMSSchedule measures baseline scheduling throughput.
func BenchmarkIMSSchedule(b *testing.B) {
	sample := perfect.CorpusN(perfect.DefaultSeed, 32)
	lat := machine.DefaultLatencies()
	m := machine.Unclustered(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := sample[i%len(sample)]
		if _, _, err := ims.Schedule(ddg.FromLoop(l, lat), m, ims.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDMSSchedule measures DMS throughput on an 8-cluster ring —
// the widest configuration the paper calls effective.
func BenchmarkDMSSchedule(b *testing.B) {
	sample := perfect.CorpusN(perfect.DefaultSeed, 32)
	lat := machine.DefaultLatencies()
	m := machine.Clustered(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := ddg.FromLoop(sample[i%len(sample)], lat)
		ddg.InsertCopies(g, ddg.MaxUses)
		if _, _, err := core.Schedule(g, m, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSMSSchedule measures the lifetime-sensitive baseline.
func BenchmarkSMSSchedule(b *testing.B) {
	sample := perfect.CorpusN(perfect.DefaultSeed, 32)
	lat := machine.DefaultLatencies()
	m := machine.Unclustered(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sms.Schedule(ddg.FromLoop(sample[i%len(sample)], lat), m, sms.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTwoPhaseSchedule measures the partition-first baseline.
func BenchmarkTwoPhaseSchedule(b *testing.B) {
	sample := perfect.CorpusN(perfect.DefaultSeed, 32)
	lat := machine.DefaultLatencies()
	m := machine.Clustered(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := ddg.FromLoop(sample[i%len(sample)], lat)
		ddg.InsertCopies(g, ddg.MaxUses)
		if _, _, err := twophase.Schedule(g, m, twophase.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompareTwoPhase reports the II cost of deciding the
// partition before scheduling (total two-phase II / total DMS II at 6
// clusters) — the quantitative form of the paper's §2 argument for the
// single-phase design.
func BenchmarkCompareTwoPhase(b *testing.B) {
	sample := perfect.CorpusN(perfect.DefaultSeed, 64)
	for i := 0; i < b.N; i++ {
		rows, err := experiment.CompareDMSTwoPhase(context.Background(), sample, []int{6}, experiment.Config{})
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		b.ReportMetric(float64(r.TwoPhaseIISum)/float64(r.DMSIISum), "II-ratio-2phase/dms")
		b.ReportMetric(float64(r.DMSWins), "dms-wins")
	}
}

// BenchmarkComparePressure reports the register saving of
// lifetime-sensitive scheduling (SMS vs IMS MaxLives at 12 FUs) — the
// software-side counterpart of the paper's register-file argument.
func BenchmarkComparePressure(b *testing.B) {
	sample := perfect.CorpusN(perfect.DefaultSeed, 64)
	for i := 0; i < b.N; i++ {
		rows, err := experiment.ComparePressure(context.Background(), sample, []int{4}, experiment.Config{})
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		b.ReportMetric(100*(1-float64(r.SMSMaxLives)/float64(r.IMSMaxLives)), "pct-regs-saved")
	}
}

// BenchmarkMII measures the lower-bound computation (binary-searched
// Bellman-Ford RecMII dominates).
func BenchmarkMII(b *testing.B) {
	sample := perfect.CorpusN(perfect.DefaultSeed, 32)
	lat := machine.DefaultLatencies()
	m := machine.Unclustered(4)
	graphs := make([]*ddg.Graph, len(sample))
	for i, l := range sample {
		graphs[i] = ddg.FromLoop(l, lat)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graphs[i%len(graphs)].MII(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCopyInsertion measures the fan-out limiting prepass.
func BenchmarkCopyInsertion(b *testing.B) {
	sample := perfect.CorpusN(perfect.DefaultSeed, 32)
	lat := machine.DefaultLatencies()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := ddg.FromLoop(sample[i%len(sample)], lat)
		ddg.InsertCopies(g, ddg.MaxUses)
	}
}

// BenchmarkQueueAllocation measures lifetime analysis plus FIFO queue
// packing.
func BenchmarkQueueAllocation(b *testing.B) {
	c, err := repro.Compile(perfect.KernelFIR4(), 6, repro.Options{Unroll: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lifetime.Analyze(c.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate measures the cycle-accurate simulator.
func BenchmarkSimulate(b *testing.B) {
	c, err := repro.Compile(perfect.KernelFIR4(), 4, repro.Options{})
	if err != nil {
		b.Fatal(err)
	}
	alloc, err := c.Allocation()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vliw.Simulate(c.Schedule, alloc, c.Metrics.Trip); err != nil {
			b.Fatal(err)
		}
	}
}

// ablationRun schedules a sample at 8 clusters with the given DMS
// options and reports the II-overhead rate versus the unclustered
// baseline plus the failure rate (loops the variant cannot schedule).
func ablationRun(b *testing.B, m *machine.Machine, opt core.Options, copyLimit int) {
	b.Helper()
	sample := perfect.CorpusN(perfect.DefaultSeed, 64)
	lat := machine.DefaultLatencies()
	um := machine.Unclustered(m.Clusters)
	for i := 0; i < b.N; i++ {
		increased, failed := 0, 0
		for _, l := range sample {
			ug := ddg.FromLoop(l, lat)
			_, ust, err := ims.Schedule(ug, um, ims.Options{})
			if err != nil {
				b.Fatal(err)
			}
			g := ddg.FromLoop(l, lat)
			if copyLimit > 0 {
				ddg.InsertCopies(g, copyLimit)
			}
			_, cst, err := core.Schedule(g, m, opt)
			if err != nil {
				failed++
				continue
			}
			if cst.II > ust.II {
				increased++
			}
		}
		b.ReportMetric(100*float64(increased)/float64(len(sample)), "pct-II-increased")
		b.ReportMetric(100*float64(failed)/float64(len(sample)), "pct-unschedulable")
	}
}

// BenchmarkAblationFullDMS is the reference point for the ablations:
// full DMS on 8 clusters.
func BenchmarkAblationFullDMS(b *testing.B) {
	ablationRun(b, machine.Clustered(8), core.Options{}, ddg.MaxUses)
}

// BenchmarkAblationNoChains disables strategy 2, approximating the
// authors' IPPS'98 single-phase scheme; the unschedulable rate shows
// why chains are required beyond ~5 clusters.
func BenchmarkAblationNoChains(b *testing.B) {
	ablationRun(b, machine.Clustered(8), core.Options{DisableChains: true}, ddg.MaxUses)
}

// BenchmarkAblationOneDirection restricts chains to the shortest ring
// direction (paper Figure 3 motivates having both).
func BenchmarkAblationOneDirection(b *testing.B) {
	ablationRun(b, machine.Clustered(8), core.Options{OneDirectionOnly: true}, ddg.MaxUses)
}

// BenchmarkAblationExtraCopyFU gives every cluster a second copy unit
// — the "additional hardware support" the paper suggests for wide
// machines (§4/§5).
func BenchmarkAblationExtraCopyFU(b *testing.B) {
	ablationRun(b, machine.ClusteredWithCopyFUs(8, 2), core.Options{}, ddg.MaxUses)
}

// BenchmarkAblationNoCopyLimit skips the fan-out limiting prepass;
// high-fan-out producers then pin consumers around themselves.
func BenchmarkAblationNoCopyLimit(b *testing.B) {
	ablationRun(b, machine.Clustered(8), core.Options{}, 0)
}
