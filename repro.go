// Package repro is a Go reproduction of "Distributed Modulo
// Scheduling" (M. M. Fernandes, J. Llosa, N. Topham; HPCA-5, 1999): a
// software-pipelining compiler that integrates modulo scheduling and
// code partitioning for clustered VLIW machines connected in a
// bi-directional ring of queue register files.
//
// The root package is a thin facade over the implementation packages:
//
//	internal/machine    — clustered VLIW machine model
//	internal/loop       — innermost-loop IR (builder, text format, unrolling)
//	internal/ddg        — dependence graphs, MII bounds, copy insertion
//	internal/ims        — Rau's Iterative Modulo Scheduling (baseline)
//	internal/core       — Distributed Modulo Scheduling (the paper)
//	internal/lifetime   — queue register allocation
//	internal/codegen    — prologue/kernel/epilogue emission
//	internal/vliw       — cycle-accurate functional simulator
//	internal/perfect    — workload (synthetic Perfect Club substitute)
//	internal/experiment — the paper's Figures 4, 5 and 6
//
// Compile runs the paper's whole tool chain on one loop and returns
// every artefact; see examples/ for narrower, per-package usage.
package repro

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/ims"
	"repro/internal/lifetime"
	"repro/internal/loop"
	"repro/internal/machine"
	"repro/internal/schedule"
	"repro/internal/vliw"
)

// Compiled bundles every artefact of one compilation.
type Compiled struct {
	// Schedule is the verified modulo schedule (it references the
	// transformed dependence graph, including inserted copies and
	// moves).
	Schedule *schedule.Schedule
	// Machine is the target.
	Machine *machine.Machine
	// Allocation assigns every value lifetime to a FIFO queue of an
	// LRF or CQRF.
	Allocation *lifetime.Allocation
	// Program is the emitted prologue/kernel/epilogue code.
	Program *codegen.Program
	// Metrics are the dynamic cycle/IPC measurements for the loop's
	// trip count.
	Metrics schedule.Metrics
	// II is the achieved initiation interval; MII the lower bound.
	II, MII int
}

// Options tune Compile.
type Options struct {
	// Unroll replicates the body before scheduling (1 = off).
	Unroll int
	// Unclustered schedules with the IMS baseline on the equivalent
	// unclustered machine instead of DMS.
	Unclustered bool
	// DMS passes extra options to the DMS scheduler.
	DMS core.Options
}

// Compile runs the paper's tool chain on the loop for a machine with
// the given cluster count: unrolling (optional), copy insertion (for
// clustered machines with at least two clusters), scheduling (DMS, or
// IMS with Options.Unclustered), schedule verification, queue register
// allocation, and code generation.
func Compile(l *loop.Loop, clusters int, opt Options) (*Compiled, error) {
	work := l
	if opt.Unroll != 0 && opt.Unroll != 1 {
		u, err := loop.Unroll(l, opt.Unroll)
		if err != nil {
			return nil, err
		}
		work = u
	}
	lat := machine.DefaultLatencies()
	g := ddg.FromLoop(work, lat)

	var (
		c   = &Compiled{}
		err error
	)
	if opt.Unclustered {
		c.Machine = machine.Unclustered(clusters)
		var st ims.Stats
		c.Schedule, st, err = ims.Schedule(g, c.Machine, ims.Options{})
		if err != nil {
			return nil, err
		}
		c.II, c.MII = st.II, st.MII
	} else {
		c.Machine = machine.Clustered(clusters)
		if clusters >= 2 {
			ddg.InsertCopies(g, ddg.MaxUses)
		}
		var st core.Stats
		c.Schedule, st, err = core.Schedule(g, c.Machine, opt.DMS)
		if err != nil {
			return nil, err
		}
		c.II, c.MII = st.II, st.MII
	}
	if err := schedule.Verify(c.Schedule); err != nil {
		return nil, fmt.Errorf("repro: scheduler produced an invalid schedule: %w", err)
	}
	if c.Allocation, err = lifetime.Analyze(c.Schedule); err != nil {
		return nil, err
	}
	if c.Program, err = codegen.Emit(c.Schedule, work.Trip); err != nil {
		return nil, err
	}
	c.Metrics = c.Schedule.Measure(work.Trip)
	return c, nil
}

// Simulate executes the compiled loop on the cycle-accurate simulator
// for its trip count, checking FIFO queue discipline and comparing
// every value against the scalar reference execution.
func (c *Compiled) Simulate() (*vliw.Result, error) {
	return vliw.Simulate(c.Schedule, c.Allocation, c.Metrics.Trip)
}
