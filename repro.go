// Package repro is a Go reproduction of "Distributed Modulo
// Scheduling" (M. M. Fernandes, J. Llosa, N. Topham; HPCA-5, 1999): a
// software-pipelining compiler that integrates modulo scheduling and
// code partitioning for clustered VLIW machines connected in a
// bi-directional ring of queue register files.
//
// The root package is a thin facade over the implementation packages:
//
//	internal/machine    — clustered VLIW machine model
//	internal/loop       — innermost-loop IR (builder, text format, unrolling)
//	internal/ddg        — dependence graphs, MII bounds, copy insertion
//	internal/ims        — Rau's Iterative Modulo Scheduling (baseline)
//	internal/core       — Distributed Modulo Scheduling (the paper)
//	internal/lifetime   — queue register allocation
//	internal/codegen    — prologue/kernel/epilogue emission
//	internal/vliw       — cycle-accurate functional simulator
//	internal/perfect    — workload (synthetic Perfect Club substitute)
//	internal/experiment — the paper's Figures 4, 5 and 6
//
// Compile runs the paper's whole tool chain on one loop and returns
// every artefact; see examples/ for narrower, per-package usage.
//
// Scheduler dispatch goes through internal/driver: a registry of
// named back-ends ("dms", "twophase", "ims", "sms") behind a common
// Scheduler interface, plus a concurrent batch compiler
// (driver.CompileAll) that shards (loop × machine × scheduler) jobs
// across a worker pool with deterministic result ordering. Compile is
// a thin wrapper over one driver job; large workloads should build a
// job list and call the batch compiler directly, as cmd/dmsbench and
// internal/experiment do. New back-ends register themselves with
// driver.Register and become selectable by name everywhere at once.
package repro

import (
	"context"

	"repro/internal/codegen"
	"repro/internal/driver"
	"repro/internal/lifetime"
	"repro/internal/loop"
	"repro/internal/machine"
	"repro/internal/schedule"
	"repro/internal/vliw"
)

// Compiled bundles every artefact of one compilation.
type Compiled struct {
	// Schedule is the verified modulo schedule (it references the
	// transformed dependence graph, including inserted copies and
	// moves).
	Schedule *schedule.Schedule
	// Machine is the target.
	Machine *machine.Machine
	// Allocation assigns every value lifetime to a FIFO queue of an
	// LRF or CQRF.
	Allocation *lifetime.Allocation
	// Program is the emitted prologue/kernel/epilogue code.
	Program *codegen.Program
	// Metrics are the dynamic cycle/IPC measurements for the loop's
	// trip count.
	Metrics schedule.Metrics
	// II is the achieved initiation interval; MII the lower bound.
	II, MII int
}

// Options tune Compile.
type Options struct {
	// Unroll replicates the body before scheduling (1 = off).
	Unroll int
	// Scheduler selects a back-end by registry name (see
	// driver.Names). Empty means "dms", or "ims" with Unclustered.
	Scheduler string
	// Unclustered schedules on the equivalent unclustered machine
	// (defaulting the scheduler to the IMS baseline) instead of the
	// clustered machine with DMS.
	Unclustered bool
	// Driver passes tuning and ablation switches to the scheduler.
	Driver driver.Options
}

func (o Options) scheduler() string {
	if o.Scheduler != "" {
		return o.Scheduler
	}
	if o.Unclustered {
		return "ims"
	}
	return "dms"
}

// Compile runs the paper's tool chain on the loop for a machine with
// the given cluster count: unrolling (optional), copy insertion (for
// clustered machines with at least two clusters), scheduling with the
// selected back-end, schedule verification, queue register
// allocation, and code generation.
func Compile(l *loop.Loop, clusters int, opt Options) (*Compiled, error) {
	return CompileCtx(context.Background(), l, clusters, opt)
}

// CompileCtx is Compile with cancellation: ctx is threaded through the
// driver into the scheduler's II search, so a canceled context (or an
// expired deadline) aborts scheduling work instead of running it to
// completion. The long-running compile service (internal/server) and
// the CLIs use this entry point.
func CompileCtx(ctx context.Context, l *loop.Loop, clusters int, opt Options) (*Compiled, error) {
	work := l
	if opt.Unroll != 0 && opt.Unroll != 1 {
		u, err := loop.Unroll(l, opt.Unroll)
		if err != nil {
			return nil, err
		}
		work = u
	}
	sched, err := driver.Get(opt.scheduler())
	if err != nil {
		return nil, err
	}
	m := driver.MachineFor(sched, clusters)
	if opt.Unclustered && sched.Clustered() {
		m = machine.Unclustered(clusters)
	}
	res := driver.CompileOne(ctx, driver.Job{
		Loop:      work,
		Machine:   m,
		Scheduler: sched.Name(),
		Options:   opt.Driver,
	})
	if res.Err != nil {
		return nil, res.Err
	}
	c := &Compiled{
		Schedule: res.Schedule,
		Machine:  m,
		Metrics:  res.Metrics,
		II:       res.Stats.II,
		MII:      res.Stats.MII,
	}
	if c.Allocation, err = lifetime.Analyze(c.Schedule); err != nil {
		return nil, err
	}
	if c.Program, err = codegen.Emit(c.Schedule, work.Trip); err != nil {
		return nil, err
	}
	return c, nil
}

// Simulate executes the compiled loop on the cycle-accurate simulator
// for its trip count, checking FIFO queue discipline and comparing
// every value against the scalar reference execution.
func (c *Compiled) Simulate() (*vliw.Result, error) {
	return vliw.Simulate(c.Schedule, c.Allocation, c.Metrics.Trip)
}
