// Package repro is a Go reproduction of "Distributed Modulo
// Scheduling" (M. M. Fernandes, J. Llosa, N. Topham; HPCA-5, 1999): a
// software-pipelining compiler that integrates modulo scheduling and
// code partitioning for clustered VLIW machines connected in a
// bi-directional ring of queue register files.
//
// The root package is a thin facade over the implementation packages:
//
//	internal/machine    — clustered VLIW machine model
//	internal/loop       — innermost-loop IR (builder, text format, unrolling)
//	internal/ddg        — dependence graphs, MII bounds, copy insertion
//	internal/ims        — Rau's Iterative Modulo Scheduling (baseline)
//	internal/core       — Distributed Modulo Scheduling (the paper)
//	internal/lifetime   — queue register allocation
//	internal/codegen    — prologue/kernel/epilogue emission
//	internal/vliw       — cycle-accurate functional simulator
//	internal/perfect    — workload (synthetic Perfect Club substitute)
//	internal/experiment — the paper's Figures 4, 5 and 6
//
// # Compiling
//
// Construct a Compiler with New and submit typed Requests:
//
//	c, err := repro.New().Compile(ctx, repro.Request{
//		Loop:     l,
//		Clusters: 4,
//	})
//
// Every compilation in the repo — the library facade, both CLIs, the
// compile service and the evaluation harness — flows through this one
// path, so validation (scheduler/machine family pairing, unroll
// bounds) happens in exactly one place. The scheduling artefacts
// (Schedule, Stats, Metrics) are computed eagerly; the back half of
// the tool chain (queue allocation, code emission, simulation) is
// computed lazily by the Compiled methods, so bulk harnesses that only
// read the II pay nothing for it.
//
// Scheduler dispatch goes through internal/driver: a registry of
// named back-ends ("dms", "twophase", "ims", "sms") behind a common
// Scheduler interface, plus a concurrent batch compiler
// (driver.CompileAll) that shards (loop × machine × scheduler) jobs
// across a worker pool with deterministic result ordering. Large
// workloads should build a job list and call the batch compiler
// directly, as cmd/dmsbench and internal/experiment do. New back-ends
// register themselves with driver.Register and become selectable by
// name everywhere at once.
//
// The compile service (internal/server, cmd/dmsserve) exposes the same
// pipeline over HTTP; its wire contract lives in repro/api/v1 and a Go
// client SDK in pkg/dmsclient.
package repro

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/codegen"
	"repro/internal/driver"
	"repro/internal/lifetime"
	"repro/internal/loop"
	"repro/internal/machine"
	"repro/internal/schedule"
	"repro/internal/vliw"
)

// Compiler runs the paper's tool chain on Requests. The zero value is
// not usable; construct one with New. A Compiler is immutable and safe
// for concurrent use.
type Compiler struct {
	reg     *driver.Registry
	lat     *machine.Latencies
	timeout time.Duration
}

// Option configures a Compiler.
type Option func(*Compiler)

// WithRegistry resolves scheduler names against reg instead of the
// process-wide default registry.
func WithRegistry(reg *driver.Registry) Option {
	return func(c *Compiler) { c.reg = reg }
}

// WithLatencies overrides the default operation latency model.
func WithLatencies(lat machine.Latencies) Option {
	return func(c *Compiler) { c.lat = &lat }
}

// WithTimeout bounds each compilation's scheduling time; the deadline
// is delivered to the back-end through its context.
func WithTimeout(d time.Duration) Option {
	return func(c *Compiler) { c.timeout = d }
}

// New returns a Compiler with the given options applied.
func New(opts ...Option) *Compiler {
	c := &Compiler{}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Request describes one compilation.
type Request struct {
	// Loop is the loop to compile (required).
	Loop *loop.Loop
	// Clusters sizes the conventional machine of the scheduler's
	// family when Machine is nil.
	Clusters int
	// Machine, when non-nil, is the explicit target and overrides
	// Clusters/Unclustered.
	Machine *machine.Machine
	// Scheduler selects a back-end by registry name (see
	// driver.Names). Empty means "dms", or "ims" with Unclustered.
	Scheduler string
	// Unclustered schedules on the equivalent unclustered machine
	// (defaulting the scheduler to the IMS baseline) instead of the
	// clustered machine with DMS.
	Unclustered bool
	// Unroll replicates the body before scheduling (0 and 1 = off).
	Unroll int
	// Options passes tuning and ablation switches to the scheduler.
	Options driver.Options
}

// scheduler resolves the back-end name. An explicit Machine overrides
// the Unclustered flag here too: the default follows the machine's
// family (single-cluster machines take the IMS baseline), not a flag
// the machine already made irrelevant.
func (r Request) scheduler() string {
	if r.Scheduler != "" {
		return r.Scheduler
	}
	if r.Machine != nil {
		if r.Machine.Clusters == 1 {
			return "ims"
		}
		return "dms"
	}
	if r.Unclustered {
		return "ims"
	}
	return "dms"
}

// Compile runs the front half of the tool chain on the request:
// unrolling (optional), copy insertion (for clustered machines with at
// least two clusters), scheduling with the selected back-end, schedule
// verification and dynamic measurement. The returned Compiled computes
// queue allocation, code emission and simulation lazily on first use.
//
// ctx is threaded through the driver into the scheduler's II search,
// so a canceled context (or an expired deadline, including the
// Compiler's WithTimeout) aborts scheduling work instead of running it
// to completion.
func (c *Compiler) Compile(ctx context.Context, req Request) (*Compiled, error) {
	if req.Loop == nil {
		return nil, fmt.Errorf("repro: request needs a loop")
	}
	work := req.Loop
	if req.Unroll != 0 && req.Unroll != 1 {
		u, err := loop.Unroll(req.Loop, req.Unroll)
		if err != nil {
			return nil, err
		}
		work = u
	}
	reg := c.reg
	if reg == nil {
		reg = driver.Default
	}
	sched, err := reg.Get(req.scheduler())
	if err != nil {
		return nil, err
	}
	m := req.Machine
	if m == nil {
		if req.Clusters < 1 {
			return nil, fmt.Errorf("repro: request needs clusters >= 1 or a machine")
		}
		m = driver.MachineFor(sched, req.Clusters)
		if req.Unclustered && sched.Clustered() {
			m = machine.Unclustered(req.Clusters)
		}
	}
	// WithLatencies wins when set; otherwise the machine's own latency
	// model applies — exactly what the compile service does for the
	// same job — so a custom machine config's latencies are honored
	// whichever door the request came through.
	lat := c.lat
	if lat == nil {
		lat = &m.Lat
	}
	res := driver.Compile(ctx, driver.Job{
		Loop:      work,
		Machine:   m,
		Scheduler: sched.Name(),
		Options:   req.Options,
	}, driver.BatchOptions{
		Timeout:   c.timeout,
		Latencies: lat,
		Registry:  c.reg,
	})
	if res.Err != nil {
		return nil, res.Err
	}
	return &Compiled{
		Schedule:  res.Schedule,
		Machine:   m,
		Scheduler: sched.Name(),
		Stats:     res.Stats,
		Metrics:   res.Metrics,
		II:        res.Stats.II,
		MII:       res.Stats.MII,
		trip:      work.Trip,
	}, nil
}

// Compiled bundles the artefacts of one compilation. The scheduling
// results are populated by Compiler.Compile; the queue allocation,
// generated code and simulation are produced (and memoized) on first
// call of the corresponding method.
type Compiled struct {
	// Schedule is the verified modulo schedule (it references the
	// transformed dependence graph, including inserted copies and
	// moves).
	Schedule *schedule.Schedule
	// Machine is the target.
	Machine *machine.Machine
	// Scheduler is the resolved back-end name the request compiled
	// with (after defaulting), so callers report the scheduler that
	// actually ran.
	Scheduler string
	// Stats is the back-end's normalized scheduling report.
	Stats driver.Stats
	// Metrics are the dynamic cycle/IPC measurements for the loop's
	// trip count.
	Metrics schedule.Metrics
	// II is the achieved initiation interval; MII the lower bound.
	II, MII int

	trip int

	allocOnce sync.Once
	alloc     *lifetime.Allocation
	allocErr  error

	progOnce sync.Once
	prog     *codegen.Program
	progErr  error
}

// Allocation assigns every value lifetime to a FIFO queue of an LRF or
// CQRF, computing the assignment on first call.
func (c *Compiled) Allocation() (*lifetime.Allocation, error) {
	c.allocOnce.Do(func() {
		c.alloc, c.allocErr = lifetime.Analyze(c.Schedule)
	})
	return c.alloc, c.allocErr
}

// Program emits the prologue/kernel/epilogue code, computing it on
// first call.
func (c *Compiled) Program() (*codegen.Program, error) {
	c.progOnce.Do(func() {
		c.prog, c.progErr = codegen.Emit(c.Schedule, c.trip)
	})
	return c.prog, c.progErr
}

// Simulate executes the compiled loop on the cycle-accurate simulator
// for its trip count, checking FIFO queue discipline and comparing
// every value against the scalar reference execution.
func (c *Compiled) Simulate() (*vliw.Result, error) {
	alloc, err := c.Allocation()
	if err != nil {
		return nil, err
	}
	return vliw.Simulate(c.Schedule, alloc, c.Metrics.Trip)
}

// Options tune the deprecated Compile/CompileCtx wrappers.
//
// Deprecated: construct a Request and use Compiler.Compile.
type Options struct {
	// Unroll replicates the body before scheduling (1 = off).
	Unroll int
	// Scheduler selects a back-end by registry name (see
	// driver.Names). Empty means "dms", or "ims" with Unclustered.
	Scheduler string
	// Unclustered schedules on the equivalent unclustered machine
	// (defaulting the scheduler to the IMS baseline) instead of the
	// clustered machine with DMS.
	Unclustered bool
	// Driver passes tuning and ablation switches to the scheduler.
	Driver driver.Options
}

// Compile runs the tool chain on the loop for a machine with the given
// cluster count.
//
// Deprecated: use New().Compile with a Request.
func Compile(l *loop.Loop, clusters int, opt Options) (*Compiled, error) {
	return CompileCtx(context.Background(), l, clusters, opt) //dms:ctxok deprecated ctx-less compatibility wrapper around CompileCtx
}

// CompileCtx is Compile with cancellation.
//
// Deprecated: use New().Compile with a Request.
func CompileCtx(ctx context.Context, l *loop.Loop, clusters int, opt Options) (*Compiled, error) {
	return New().Compile(ctx, Request{
		Loop:        l,
		Clusters:    clusters,
		Scheduler:   opt.Scheduler,
		Unclustered: opt.Unclustered,
		Unroll:      opt.Unroll,
		Options:     opt.Driver,
	})
}
