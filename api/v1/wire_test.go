package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"reflect"
	"testing"
)

// wireTypes lists every type of the v1 contract; the round-trip and
// tolerance properties run over all of them, so adding a type to the
// package without adding it here is the only way to dodge the tests —
// keep it in sync.
func wireTypes() []any {
	return []any{
		CompileRequest{},
		MachineSpec{},
		Options{},
		Job{},
		JobResult{},
		Stats{},
		ScheduleMetrics{},
		Summary{},
		Error{},
		ErrorResponse{},
		SchedulerInfo{},
		CacheMetrics{},
		QueueMetrics{},
		DispatchMetrics{},
		WorkerMetrics{},
		DurabilityMetrics{},
		ServerMetrics{},
		Health{},
		LeaseRequest{},
		WorkUnit{},
		Lease{},
		UnitResult{},
		WorkResultsRequest{},
		WorkResultsResponse{},
	}
}

// fill populates v (a pointer to struct) with deterministic
// pseudorandom values, recursing through nested structs, slices, maps
// and pointers, so the round-trip property runs over fully populated
// values rather than zero ones.
func fill(rng *rand.Rand, v reflect.Value) {
	switch v.Kind() {
	case reflect.Pointer:
		v.Set(reflect.New(v.Type().Elem()))
		fill(rng, v.Elem())
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).IsExported() {
				fill(rng, v.Field(i))
			}
		}
	case reflect.Slice:
		if v.Type() == reflect.TypeOf(json.RawMessage(nil)) {
			v.Set(reflect.ValueOf(json.RawMessage(fmt.Sprintf(`{"n":%d}`, rng.Intn(1000)))))
			return
		}
		n := 1 + rng.Intn(3)
		s := reflect.MakeSlice(v.Type(), n, n)
		for i := 0; i < n; i++ {
			fill(rng, s.Index(i))
		}
		v.Set(s)
	case reflect.Map:
		m := reflect.MakeMap(v.Type())
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			k := reflect.New(v.Type().Key()).Elem()
			fill(rng, k)
			val := reflect.New(v.Type().Elem()).Elem()
			fill(rng, val)
			m.SetMapIndex(k, val)
		}
		v.Set(m)
	case reflect.String:
		// Includes ErrorCode: any string value must survive the trip.
		v.SetString(fmt.Sprintf("s%d", rng.Intn(1_000_000)))
	case reflect.Bool:
		v.SetBool(rng.Intn(2) == 0)
	case reflect.Int, reflect.Int64:
		v.SetInt(rng.Int63n(1 << 40))
	case reflect.Uint, reflect.Uint64:
		v.SetUint(uint64(rng.Int63n(1 << 40)))
	case reflect.Float64:
		// Any float64 round-trips through encoding/json exactly
		// (shortest decimal form re-parses to the same bits).
		v.SetFloat(rng.Float64() * float64(rng.Intn(1000)))
	default:
		panic(fmt.Sprintf("fill: unhandled kind %s in wire type", v.Kind()))
	}
}

// TestRoundTripFixedPoint is the encode→decode→encode property: for
// every wire type and many pseudorandom populated values, marshaling,
// unmarshaling into a fresh value and marshaling again yields
// byte-identical JSON. A field that silently drops or renames data
// (bad tag, unexported field, lossy custom marshaler) breaks the
// fixed point.
func TestRoundTripFixedPoint(t *testing.T) {
	for _, proto := range wireTypes() {
		typ := reflect.TypeOf(proto)
		t.Run(typ.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 100; seed++ {
				rng := rand.New(rand.NewSource(seed))
				val := reflect.New(typ)
				fill(rng, val.Elem())
				first, err := json.Marshal(val.Interface())
				if err != nil {
					t.Fatalf("seed %d: marshal: %v", seed, err)
				}
				back := reflect.New(typ)
				if err := json.Unmarshal(first, back.Interface()); err != nil {
					t.Fatalf("seed %d: unmarshal: %v", seed, err)
				}
				second, err := json.Marshal(back.Interface())
				if err != nil {
					t.Fatalf("seed %d: re-marshal: %v", seed, err)
				}
				if !bytes.Equal(first, second) {
					t.Fatalf("seed %d: not a fixed point:\n first %s\nsecond %s", seed, first, second)
				}
			}
		})
	}
}

// TestUnknownFieldTolerance pins forward compatibility: a v1 client
// must decode payloads from a newer server that added fields. The
// injection is at the top level of each type — and since every nested
// object's type is itself in wireTypes, each nesting level is covered
// as the top level of its own subtest. (Requests are the one strict
// direction — the server rejects unknown request fields — but every
// response type here must stay tolerant.)
func TestUnknownFieldTolerance(t *testing.T) {
	for _, proto := range wireTypes() {
		typ := reflect.TypeOf(proto)
		t.Run(typ.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			val := reflect.New(typ)
			fill(rng, val.Elem())
			enc, err := json.Marshal(val.Interface())
			if err != nil {
				t.Fatal(err)
			}
			withExtra := append([]byte(`{"xx_future_field":{"nested":[1,2,3]},`), enc[1:]...)
			back := reflect.New(typ)
			if err := json.Unmarshal(withExtra, back.Interface()); err != nil {
				t.Fatalf("decoding with unknown fields failed: %v\npayload: %s", err, withExtra)
			}
			again, err := json.Marshal(back.Interface())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, again) {
				t.Fatalf("unknown fields corrupted known ones:\n before %s\n after %s", enc, again)
			}
		})
	}
}

func TestDecodeStreamLine(t *testing.T) {
	rec, sum, err := DecodeStreamLine([]byte(`{"index":3,"job":"dot/c4/dms","mii":2,"ii":2,"future":1}`))
	if err != nil || sum != nil || rec == nil {
		t.Fatalf("result line misclassified: rec=%v sum=%v err=%v", rec, sum, err)
	}
	if rec.Index != 3 || rec.Job != "dot/c4/dms" || rec.II != 2 {
		t.Errorf("decoded %+v", rec)
	}

	line, err := EncodeSummaryLine(Summary{Jobs: 7, Errors: 1, Cached: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec, sum, err = DecodeStreamLine(line)
	if err != nil || rec != nil || sum == nil {
		t.Fatalf("summary line misclassified: rec=%v sum=%v err=%v", rec, sum, err)
	}
	if *sum != (Summary{Jobs: 7, Errors: 1, Cached: 2}) {
		t.Errorf("decoded summary %+v", sum)
	}

	if _, _, err := DecodeStreamLine([]byte(`not json`)); err == nil {
		t.Error("garbage line decoded")
	}
}

func TestJobAxes(t *testing.T) {
	req := CompileRequest{
		Loops:      []string{"a", "b", "c"},
		Machines:   []MachineSpec{{Clusters: 1}, {Clusters: 2}},
		Schedulers: []string{"dms", "ims"},
	}
	if req.Jobs() != 12 {
		t.Fatalf("Jobs() = %d", req.Jobs())
	}
	// The cross product is loops outermost, schedulers innermost.
	idx := 0
	for li := range req.Loops {
		for mi := range req.Machines {
			for si := range req.Schedulers {
				l, m, s := req.JobAxes(idx)
				if l != li || m != mi || s != si {
					t.Errorf("JobAxes(%d) = (%d,%d,%d), want (%d,%d,%d)", idx, l, m, s, li, mi, si)
				}
				idx++
			}
		}
	}
}

func TestErrorCodeProperties(t *testing.T) {
	retryable := map[ErrorCode]bool{
		CodeTimeout: true, CodeCanceled: true, CodeQueueFull: true,
		CodeInvalidRequest: false, CodeUnknownScheduler: false,
		CodeNotFound: false, CodeMethodNotAllowed: false, CodeInternal: false,
	}
	if got := CodeQueueFull.HTTPStatus(); got != http.StatusTooManyRequests {
		t.Errorf("queue_full status = %d, want 429", got)
	}
	for code, want := range retryable {
		if code.Retryable() != want {
			t.Errorf("%s.Retryable() = %v, want %v", code, code.Retryable(), want)
		}
		if code.HTTPStatus() < 400 || code.HTTPStatus() > 599 {
			t.Errorf("%s.HTTPStatus() = %d", code, code.HTTPStatus())
		}
	}
	e := &Error{Code: CodeTimeout, Message: "job took too long"}
	if e.Error() != "timeout: job took too long" {
		t.Errorf("Error() = %q", e.Error())
	}
}

func TestJobStateTerminal(t *testing.T) {
	terminal := map[JobState]bool{
		JobQueued: false, JobRunning: false,
		JobDone: true, JobCanceled: true, JobFailed: true,
	}
	for state, want := range terminal {
		if state.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", state, state.Terminal(), want)
		}
	}
}

func TestJobPaths(t *testing.T) {
	if got := JobPath("abc"); got != "/v1/jobs/abc" {
		t.Errorf("JobPath = %q", got)
	}
	if got := JobResultsPath("abc", 0); got != "/v1/jobs/abc/results" {
		t.Errorf("JobResultsPath(0) = %q", got)
	}
	if got := JobResultsPath("abc", 17); got != "/v1/jobs/abc/results?from=17" {
		t.Errorf("JobResultsPath(17) = %q", got)
	}
}

func TestFormatExtra(t *testing.T) {
	if got := FormatExtra(nil); got != "" {
		t.Errorf("FormatExtra(nil) = %q", got)
	}
	extra := map[string]int{"zeta": 1, "alpha": 2, "mid": 3}
	want := "alpha=2 mid=3 zeta=1"
	// Map iteration order is randomized; repeated calls must still be
	// byte-identical, which only holds if the keys are sorted.
	for i := 0; i < 50; i++ {
		if got := FormatExtra(extra); got != want {
			t.Fatalf("FormatExtra = %q, want %q", got, want)
		}
	}
}
