package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden wire-format file")

// goldenDoc is one canonical, fully-populated instance of every v1
// wire type. Its serialized form is pinned in testdata; any change to
// a JSON tag, field order, omitempty behaviour or type shape shows up
// as a golden diff and must be treated as a (breaking) protocol
// change, not a refactor.
func goldenDoc() any {
	return struct {
		CompileRequest CompileRequest  `json:"compile_request"`
		JobQueued      Job             `json:"job_queued"`
		JobRunning     Job             `json:"job_running"`
		JobDone        Job             `json:"job_done"`
		JobFailed      Job             `json:"job_failed"`
		JobResult      JobResult       `json:"job_result"`
		ErrorResult    JobResult       `json:"error_result"`
		SummaryLine    json.RawMessage `json:"summary_line"`
		ErrorResponse  ErrorResponse   `json:"error_response"`
		QueueFull      ErrorResponse   `json:"queue_full_response"`
		Schedulers     []SchedulerInfo `json:"schedulers"`
		ServerMetrics  ServerMetrics   `json:"server_metrics"`
		Health         Health          `json:"health"`
		// Worker-pull surface (additive in this protocol revision).
		LeaseRequest  LeaseRequest        `json:"lease_request"`
		Lease         Lease               `json:"lease"`
		EmptyLease    Lease               `json:"empty_lease"`
		WorkResults   WorkResultsRequest  `json:"work_results_request"`
		WorkResultsOK WorkResultsResponse `json:"work_results_response"`
		LeaseExpired  ErrorResponse       `json:"lease_expired_response"`
	}{
		CompileRequest: CompileRequest{
			Protocol:   Version,
			Loops:      []string{"loop dot trip 100\nx = load\ny = load\nm = mul x, y\nacc = add m, acc@1\nout = store acc\n"},
			Machines:   []MachineSpec{{Clusters: 4}, {Clusters: 2, Unclustered: true}, {Config: json.RawMessage(`{"clusters":3}`)}},
			Schedulers: []string{"dms", "ims"},
			Options: Options{
				BudgetRatio:      6,
				MaxII:            64,
				DisableChains:    true,
				OneDirectionOnly: true,
				RefinementPasses: 2,
				LoadSlack:        1,
			},
			TimeoutMS: 30000,
			NoCache:   true,
		},
		JobQueued: Job{
			ID:            "a3f9c2e15b7d40618e24f0a9c6d83b57",
			State:         JobQueued,
			QueuePos:      2,
			Jobs:          7,
			CreatedUnixMS: 946684800000,
		},
		JobRunning: Job{
			ID:            "a3f9c2e15b7d40618e24f0a9c6d83b57",
			State:         JobRunning,
			Jobs:          7,
			Done:          3,
			Errors:        1,
			Cached:        2,
			CreatedUnixMS: 946684800000,
			StartedUnixMS: 946684801000,
		},
		JobDone: Job{
			ID:             "a3f9c2e15b7d40618e24f0a9c6d83b57",
			State:          JobDone,
			Jobs:           7,
			Done:           7,
			Errors:         1,
			Cached:         3,
			CreatedUnixMS:  946684800000,
			StartedUnixMS:  946684801000,
			FinishedUnixMS: 946684802000,
		},
		JobFailed: Job{
			ID:             "1b2c3d4e5f60718293a4b5c6d7e8f901",
			State:          JobFailed,
			Jobs:           7,
			Done:           2,
			Error:          "executor panicked: boom",
			CreatedUnixMS:  946684800000,
			StartedUnixMS:  946684801000,
			FinishedUnixMS: 946684802000,
		},
		JobResult: JobResult{
			Index: 5,
			Job:   "dot/clustered-4/dms",
			MII:   2,
			II:    3,
			Stats: &Stats{
				MII: 2, II: 3, IIsTried: 2, Placements: 17, Evictions: 4,
				OptimalII: 2, ProvedOptimal: true,
				Extra: map[string]int{"chains_built": 1, "copies_inserted": 2, "gap": 1, "strategy1": 9},
			},
			Metrics: &ScheduleMetrics{
				II: 3, Len: 9, Stages: 3, Trip: 100, Useful: 5, Cycles: 306, IPC: 1.633986928104575, MovesIn: 2,
			},
			Schedule: "t=0 c=0 mem x\nt=0 c=1 mem y\n",
			Cached:   true,
		},
		ErrorResult: JobResult{
			Index:     6,
			Job:       "dot/clustered-4/dms",
			Error:     "driver: dot/clustered-4/dms timed out after 1ms: context deadline exceeded",
			ErrorCode: CodeTimeout,
		},
		SummaryLine:   mustSummaryLine(Summary{Jobs: 7, Errors: 1, Cached: 3}),
		ErrorResponse: ErrorResponse{Error: Error{Code: CodeUnknownScheduler, Message: `driver: unknown scheduler "nope" (have dms, ims, sms, twophase)`}},
		QueueFull:     ErrorResponse{Error: Error{Code: CodeQueueFull, Message: "admission queue at capacity (64 queued); retry after 1s", QueuePos: 65}},
		Schedulers: []SchedulerInfo{
			{Name: "dms", Clustered: true},
			{Name: "ims", Clustered: false},
		},
		ServerMetrics: ServerMetrics{
			Requests: 12, Jobs: 340, JobErrors: 2,
			Cache: CacheMetrics{Hits: 200, Misses: 140, Shared: 7, Evictions: 3, Entries: 137, Inflight: 1, MaxEntries: 4096},
			Queue: QueueMetrics{
				Depth: 3, Running: 2, Retained: 9, RetainedBytes: 73114, Capacity: 64,
				Admitted: 118, Rejected: 4, Completed: 102, Canceled: 11,
				Workers: 2, EWMAServiceMS: 412.5,
			},
			Dispatch: &DispatchMetrics{
				PendingUnits: 12, LeasedUnits: 8, ActiveLeases: 2,
				Dispatched: 960, Resolved: 940, Requeued: 6,
				Workers: map[string]WorkerMetrics{
					"worker-7f3a": {
						UnitsPerSec: 118.4, EWMAUnitMS: 8.2, CacheHitRate: 0.25,
						CurrentChunk: 48, ResolvedUnits: 512,
						Schedulers: []string{"dms", "exact", "ims", "portfolio", "sms", "twophase"},
					},
					"worker-slow": {
						UnitsPerSec: 29.1, EWMAUnitMS: 33.7, CacheHitRate: 0.25,
						CurrentChunk: 12, ResolvedUnits: 428,
					},
				},
			},
			Portfolio: &PortfolioMetrics{
				Races: 40, GapObserved: 38, GapSum: 9, GapMax: 2, ProvedOptimal: 31,
				Wins:    map[string]int64{"dms": 36, "exact": 4},
				Losses:  map[string]int64{"exact": 20},
				Cancels: map[string]int64{"dms": 4, "exact": 14},
			},
		},
		Health: Health{Status: "ok", Protocol: Version},
		LeaseRequest: LeaseRequest{
			Protocol:   Version,
			Worker:     "worker-7f3a",
			MaxUnits:   8,
			WaitMS:     2000,
			Schedulers: []string{"dms", "exact", "ims", "portfolio", "sms", "twophase"},
			EWMAUnitMS: 8.2,
		},
		Lease: Lease{
			ID: "9c1e4b22aa30dd41",
			Units: []WorkUnit{{
				ID:        "a3f9c2e15b7d40618e24f0a9c6d83b57/3",
				Hash:      "51b7c1b0d7b9f0f1a2e3d4c5b6a79881726354450918273645546372819faceb",
				Loop:      "loop dot trip 100\nx = load\ny = load\nm = mul x, y\nacc = add m, acc@1\nout = store acc\n",
				Machine:   MachineSpec{Clusters: 4},
				Scheduler: "dms",
				Options:   Options{BudgetRatio: 6},
				TimeoutMS: 30000,
			}},
			TTLMS:     15000,
			Remaining: 42,
		},
		EmptyLease: Lease{PollMS: 500},
		WorkResults: WorkResultsRequest{
			Protocol: Version,
			Results: []UnitResult{{
				Unit: "a3f9c2e15b7d40618e24f0a9c6d83b57/3",
				Result: JobResult{
					Job: "dot/clustered-4/dms",
					MII: 2, II: 3,
					Schedule: "t=0 c=0 mem x\nt=0 c=1 mem y\n",
				},
			}},
		},
		WorkResultsOK: WorkResultsResponse{Acked: 1, Canceled: []string{"a3f9c2e15b7d40618e24f0a9c6d83b57/5"}},
		LeaseExpired:  ErrorResponse{Error: Error{Code: CodeLeaseExpired, Message: "lease 9c1e4b22aa30dd41 expired; its units were requeued"}},
	}
}

func mustSummaryLine(s Summary) json.RawMessage {
	b, err := EncodeSummaryLine(s)
	if err != nil {
		panic(err)
	}
	return b
}

// TestGoldenWireFormat pins the v1 wire format byte-for-byte. If this
// test fails after a change, the change is protocol-visible: either
// revert it, or mint a v2 — do not regenerate the golden file to make
// an accidental break pass CI.
func TestGoldenWireFormat(t *testing.T) {
	got, err := json.MarshalIndent(goldenDoc(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "wire_v1.golden.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./api/v1 -update` once to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("v1 wire format drifted from the golden file.\nThis is a breaking protocol change if shipped.\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestGoldenDecodes proves the pinned document is not just stable but
// usable: the golden bytes decode back into the same values that
// produced them (so the file cannot drift into something only the
// encoder understands).
func TestGoldenDecodes(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "wire_v1.golden.json"))
	if err != nil {
		t.Skip("golden file not generated yet")
	}
	var doc struct {
		CompileRequest CompileRequest `json:"compile_request"`
		JobQueued      Job            `json:"job_queued"`
		JobDone        Job            `json:"job_done"`
		JobResult      JobResult      `json:"job_result"`
		ErrorResult    JobResult      `json:"error_result"`
		QueueFull      ErrorResponse  `json:"queue_full_response"`
		Lease          Lease          `json:"lease"`
		EmptyLease     Lease          `json:"empty_lease"`
		LeaseExpired   ErrorResponse  `json:"lease_expired_response"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.CompileRequest.Jobs() != 6 {
		t.Errorf("golden request decodes to %d jobs, want 6", doc.CompileRequest.Jobs())
	}
	if doc.JobResult.Stats == nil || doc.JobResult.Stats.Placements != 17 {
		t.Errorf("golden job result stats decoded wrong: %+v", doc.JobResult.Stats)
	}
	if !doc.ErrorResult.ErrorCode.Retryable() {
		t.Errorf("golden error result %q must be retryable", doc.ErrorResult.ErrorCode)
	}
	if doc.JobQueued.State.Terminal() || !doc.JobDone.State.Terminal() {
		t.Errorf("golden job states misclassify terminality: %s / %s", doc.JobQueued.State, doc.JobDone.State)
	}
	if doc.JobQueued.QueuePos != 2 {
		t.Errorf("golden queued job position = %d, want 2", doc.JobQueued.QueuePos)
	}
	if !doc.QueueFull.Error.Code.Retryable() {
		t.Errorf("golden %q must be retryable", doc.QueueFull.Error.Code)
	}
	if doc.QueueFull.Error.QueuePos != 65 {
		t.Errorf("golden queue_full position = %d, want 65", doc.QueueFull.Error.QueuePos)
	}
	if len(doc.Lease.Units) != 1 || doc.Lease.Units[0].Hash == "" || doc.Lease.TTLMS != 15000 {
		t.Errorf("golden lease decoded wrong: %+v", doc.Lease)
	}
	if doc.Lease.Remaining != 42 {
		t.Errorf("golden lease remaining = %d, want 42", doc.Lease.Remaining)
	}
	if doc.EmptyLease.ID != "" || doc.EmptyLease.PollMS != 500 {
		t.Errorf("golden empty lease decoded wrong: %+v", doc.EmptyLease)
	}
	if doc.LeaseExpired.Error.Code.Retryable() {
		t.Errorf("golden %q must not be retryable (the worker drops the lease, it does not repost)", doc.LeaseExpired.Error.Code)
	}
	if doc.LeaseExpired.Error.Code.HTTPStatus() != 410 {
		t.Errorf("lease_expired maps to HTTP %d, want 410", doc.LeaseExpired.Error.Code.HTTPStatus())
	}
}
