// Package api defines version 1 of the compile service's public wire
// contract: the JSON request/response/error types, the NDJSON stream
// framing, the structured error codes and the protocol version
// handshake. It is the single source of truth shared by the server
// (internal/server), the Go SDK (pkg/dmsclient), the dmsclient CLI and
// any external client.
//
// The package deliberately imports nothing but the standard library,
// so importing it pulls in no scheduler code. Conversions between
// these wire types and the in-process driver types live next to the
// server, not here.
//
// # Endpoints
//
//	POST   /v1/jobs              — submit a batch asynchronously; the
//	                               response is the created Job resource
//	GET    /v1/jobs/{id}         — poll a Job's state and counts
//	GET    /v1/jobs/{id}/results — stream the Job's results as NDJSON;
//	                               ?from=<index> resumes mid-stream
//	DELETE /v1/jobs/{id}         — cancel a queued or running Job
//	POST   /v1/compile           — compile a batch synchronously; the
//	                               response is an NDJSON stream (a thin
//	                               wrapper over the job engine)
//	GET    /v1/metrics           — service, cache and queue counters
//	                               (ServerMetrics)
//	GET    /v1/schedulers        — registered back-ends ([]SchedulerInfo)
//	GET    /v1/healthz           — liveness probe (Health)
//
//	POST   /v1/workers/lease           — lease a chunk of queued compile
//	                                     units (worker-pull surface)
//	POST   /v1/workers/{lease}/results — append unit results and
//	                                     heartbeat the lease
//
// # Job lifecycle
//
// POST /v1/jobs runs the same request validation as /v1/compile, then
// admits the batch to a bounded FIFO queue and immediately returns a
// Job: its ID, state, queue position and result counts. States move
// strictly forward:
//
//	queued → running → done
//	queued | running → canceled   (DELETE /v1/jobs/{id})
//	running → failed              (internal executor failure)
//
// When the queue is full the submission is rejected with HTTP 429 and
// error code queue_full; the response carries a Retry-After header
// (integer seconds) with the server's backoff hint. Results are
// retained for a TTL after the job finishes, so a client may poll and
// re-stream them until garbage collection; afterwards the ID answers
// not_found.
//
// # Stream framing
//
// A /v1/compile or /v1/jobs/{id}/results response body is NDJSON: one
// JSON object per line. Every line but the last is a JobResult,
// emitted in completion order (reorder by Index to recover request
// order). The final line is a terminal summary record of the form
//
//	{"summary":{"jobs":N,"errors":E,"cached":C}}
//
// distinguished from result lines by its single "summary" key; use
// DecodeStreamLine to classify lines.
//
// A results stream accepts ?from=<index> to skip the first <index>
// result lines — the resume offset after a dropped connection. The
// terminal summary always counts every result the job produced (the
// full batch for a "done" job, possibly fewer for a canceled or
// failed one), not the lines of one (possibly resumed) stream, so a
// resuming client checks its cumulative line count against the
// summary.
//
// # Worker-pull protocol
//
// A coordinator decomposes every admitted batch into compile units —
// one (loop, machine, scheduler) triple each — and queues them for
// worker processes to pull. POST /v1/workers/lease hands a worker a
// chunk of units under a Lease with a heartbeat TTL; units are routed
// by the canonical content hash of the unit (Hash), so identical loops
// land on the same worker and its warm schedule cache, while an idle
// worker steals unrouted or orphaned units rather than starving. A
// worker sizes MaxUnits itself from its observed per-unit service time
// and the queue depth the previous Lease reported in Remaining, and may
// advertise the schedulers it runs so expensive back-ends route to
// capable workers only. The worker posts completed results — batched
// into one results[] frame per flush window (which also heartbeats the
// lease) — to POST /v1/workers/{lease}/results; a lease whose heartbeat
// deadline
// passes has its unresolved units returned to the queue — a crashed
// worker never loses a job — and any later post under it is rejected
// with lease_expired, which keeps results exactly-once:
//
//	        lease
//	queued ───────▶ leased ──ack (result posted)──▶ resolved
//	   ▲               │
//	   └───────────────┘
//	    expiry / nack (requeue)
//
// # Versioning
//
// The protocol version is carried in the Dms-Protocol header of every
// response and may be asserted by clients in CompileRequest.Protocol.
// Within v1, changes are additive only: new response fields may appear
// at any time, so clients MUST ignore unknown fields (every type here
// decodes tolerantly). Request fields are strict — the server rejects
// unknown request fields with invalid_request, which turns a typo'd
// option into an error instead of a silently different compile. A
// breaking change mints /v2 alongside /v1; deprecated routes keep
// answering for one release with a Deprecation header before removal.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// Version is the protocol version implemented by this package, as it
// appears in route prefixes, the Dms-Protocol header and
// CompileRequest.Protocol.
const Version = "v1"

// ProtocolHeader is the response header naming the protocol version
// the server spoke ("v1"). Clients verify it during the handshake.
const ProtocolHeader = "Dms-Protocol"

// RetryAfterHeader is the standard backoff hint carried by queue_full
// (HTTP 429) responses: the number of seconds a client should wait
// before resubmitting.
const RetryAfterHeader = "Retry-After"

// Route paths of the v1 surface.
const (
	PathCompile      = "/v1/compile"
	PathJobs         = "/v1/jobs"
	PathMetrics      = "/v1/metrics"
	PathSchedulers   = "/v1/schedulers"
	PathHealth       = "/v1/healthz"
	PathWorkers      = "/v1/workers"
	PathWorkersLease = "/v1/workers/lease"
)

// WorkerResultsPath returns the result-append/heartbeat route of one
// lease.
func WorkerResultsPath(lease string) string {
	return PathWorkers + "/" + lease + "/results"
}

// JobPath returns the polling/cancel route of one job resource.
func JobPath(id string) string { return PathJobs + "/" + id }

// JobResultsPath returns the results-stream route of one job resource,
// with the resume offset (0 streams from the beginning).
func JobResultsPath(id string, from int) string {
	p := PathJobs + "/" + id + "/results"
	if from > 0 {
		p += fmt.Sprintf("?from=%d", from)
	}
	return p
}

// ErrorCode classifies every failure the service reports, both
// request-level (ErrorResponse) and per-job (JobResult.ErrorCode).
type ErrorCode string

const (
	// CodeInvalidRequest: the request body failed validation (bad JSON,
	// unknown fields, empty axes, malformed loop or machine, oversized
	// cross product).
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeUnknownScheduler: a scheduler name is not in the registry.
	CodeUnknownScheduler ErrorCode = "unknown_scheduler"
	// CodeTimeout: the per-job scheduling timeout expired. Retryable.
	CodeTimeout ErrorCode = "timeout"
	// CodeCanceled: the job was canceled (client disconnect or server
	// shutdown) before it finished. Retryable.
	CodeCanceled ErrorCode = "canceled"
	// CodeQueueFull: the admission queue is saturated and the request
	// was rejected rather than queued. Retryable; the response carries
	// a Retry-After header with the server's backoff hint.
	CodeQueueFull ErrorCode = "queue_full"
	// CodeNotFound: no route matches the request path, or a job ID is
	// unknown (never existed, or already garbage-collected).
	CodeNotFound ErrorCode = "not_found"
	// CodeMethodNotAllowed: the route exists but not for this method.
	CodeMethodNotAllowed ErrorCode = "method_not_allowed"
	// CodeLeaseExpired: a worker posted results under a lease whose
	// heartbeat deadline passed — its unresolved units were already
	// returned to the queue for another worker. Not retryable: the
	// worker drops the lease's remaining work and leases afresh.
	CodeLeaseExpired ErrorCode = "lease_expired"
	// CodeInternal: any other server-side failure.
	CodeInternal ErrorCode = "internal"
)

// Retryable reports whether the identical request may succeed if
// resubmitted unchanged (the failure was a scheduling deadline, a
// cancellation or a momentarily saturated queue, not a property of
// the request itself).
func (c ErrorCode) Retryable() bool {
	return c == CodeTimeout || c == CodeCanceled || c == CodeQueueFull
}

// HTTPStatus is the status the service pairs with a request-level
// error of this code.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeInvalidRequest, CodeUnknownScheduler:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeLeaseExpired:
		return http.StatusGone
	case CodeTimeout:
		return http.StatusRequestTimeout
	case CodeQueueFull:
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// Error is a structured service error.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`

	// RetryAfter is the server's backoff hint, decoded from the
	// Retry-After response header by clients (it is not part of the
	// JSON body). Zero when the server sent none.
	RetryAfter time.Duration `json:"-"`

	// QueuePos, on a queue_full error, is the 1-based queue position a
	// resubmission would occupy once a slot frees — the same gauge an
	// asynchronous submitter reads from its Job resource, surfaced here
	// so synchronous /v1/compile clients see their place in line too.
	QueuePos int `json:"queue_pos,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// ErrorResponse is the JSON body of every non-200 response.
type ErrorResponse struct {
	Error Error `json:"error"`
}

// Options is the scheduler-independent tuning surface, broadcast to
// every job of a request. It mirrors the driver's options; fields a
// back-end does not understand are ignored by it.
type Options struct {
	// BudgetRatio bounds scheduling attempts at BudgetRatio × ops per
	// candidate II (0 = the scheduler's default).
	BudgetRatio int `json:"budget_ratio,omitempty"`
	// MaxII caps the candidate initiation interval (0 = derived bound).
	MaxII int `json:"max_ii,omitempty"`
	// DisableChains and OneDirectionOnly are the DMS ablation switches.
	DisableChains    bool `json:"disable_chains,omitempty"`
	OneDirectionOnly bool `json:"one_direction_only,omitempty"`
	// RefinementPasses and LoadSlack tune the two-phase baseline's
	// partitioner (0 = defaults).
	RefinementPasses int `json:"refinement_passes,omitempty"`
	LoadSlack        int `json:"load_slack,omitempty"`
}

// MachineSpec names one target machine: either a conventional family
// member by cluster count, or a full JSON machine description.
type MachineSpec struct {
	// Clusters picks the conventional clustered machine of that size,
	// or the equivalent unclustered machine with Unclustered set.
	Clusters    int  `json:"clusters,omitempty"`
	Unclustered bool `json:"unclustered,omitempty"`
	// Config, when present, is a full machine description in the
	// server's JSON config format and overrides the other fields.
	Config json.RawMessage `json:"config,omitempty"`
}

// CompileRequest is the JSON body of POST /v1/compile. The job list is
// the (loops × machines × schedulers) cross product in deterministic
// order — loops outermost, schedulers innermost — so job index i maps
// back to axes as
//
//	loop      i / (len(machines) * len(schedulers))
//	machine   (i / len(schedulers)) % len(machines)
//	scheduler i % len(schedulers)
type CompileRequest struct {
	// Protocol asserts the protocol version the client speaks (""
	// or "v1"); any other value is rejected with invalid_request.
	Protocol string `json:"protocol,omitempty"`
	// Loops are loop files in the service's textual loop format.
	Loops []string `json:"loops"`
	// Machines select the targets.
	Machines []MachineSpec `json:"machines"`
	// Schedulers are registry names (see GET /v1/schedulers).
	Schedulers []string `json:"schedulers"`
	// Options is broadcast to every job.
	Options Options `json:"options"`
	// TimeoutMS bounds each job's scheduling time in milliseconds; it
	// can only tighten the server-side timeout, never extend it.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoCache bypasses the cache lookup (results are still stored),
	// for measurements that need a cold compile.
	NoCache bool `json:"no_cache,omitempty"`
}

// Jobs returns the size of the request's job cross product.
func (r *CompileRequest) Jobs() int {
	return len(r.Loops) * len(r.Machines) * len(r.Schedulers)
}

// JobAxes maps a job index back to its (loop, machine, scheduler)
// indices in the request, inverting the cross-product order.
func (r *CompileRequest) JobAxes(index int) (loop, machine, scheduler int) {
	ns, nm := len(r.Schedulers), len(r.Machines)
	return index / (nm * ns), (index / ns) % nm, index % ns
}

// Stats is the normalized scheduling report of one job.
type Stats struct {
	MII        int `json:"mii"`        // lower bound the search started from
	II         int `json:"ii"`         // achieved initiation interval
	IIsTried   int `json:"iis_tried"`  // candidate IIs attempted
	Placements int `json:"placements"` // placement operations across all IIs
	Evictions  int `json:"evictions"`  // operations unscheduled by backtracking
	// OptimalII and ProvedOptimal carry the optimality certificate of
	// back-ends that can produce one (exact proves its own result; the
	// portfolio meta-scheduler records the bound when its exact entrant
	// finishes in time). When ProvedOptimal is true the optimality gap
	// II − OptimalII is also published under Extra["gap"].
	OptimalII     int  `json:"optimal_ii,omitempty"`
	ProvedOptimal bool `json:"proved_optimal,omitempty"`
	// Extra holds scheduler-specific counters under documented keys.
	Extra map[string]int `json:"extra,omitempty"`
}

// ScheduleMetrics are the dynamic cycle/IPC measurements of one
// schedule at the loop's trip count.
type ScheduleMetrics struct {
	II      int     `json:"ii"`
	Len     int     `json:"len"`
	Stages  int     `json:"stages"`
	Trip    int     `json:"trip"`
	Useful  int     `json:"useful"` // useful (non-copy/move) static operations
	Cycles  int64   `json:"cycles"`
	IPC     float64 `json:"ipc"`
	MovesIn int     `json:"moves_in"` // copy+move operations in the final graph
}

// JobResult is one result line of a /v1/compile response stream.
type JobResult struct {
	// Index is the job's position in request order; lines arrive in
	// completion order, so clients reorder by Index.
	Index int `json:"index"`
	// Job names the (loop, machine, scheduler) triple.
	Job string `json:"job"`
	// Error and ErrorCode are set instead of the remaining fields when
	// the job failed. Jobs with a Retryable code may be resubmitted.
	//dms:wireok pre-analyzer name: JobResult.Error (string) and ErrorResponse.Error (object) never share an envelope
	Error     string    `json:"error,omitempty"`
	ErrorCode ErrorCode `json:"error_code,omitempty"`

	MII      int              `json:"mii,omitempty"`
	II       int              `json:"ii,omitempty"`
	Stats    *Stats           `json:"stats,omitempty"`
	Metrics  *ScheduleMetrics `json:"metrics,omitempty"`
	Schedule string           `json:"schedule,omitempty"`

	// Cached reports that the result was served from the cache (or a
	// shared in-flight computation) rather than compiled for this job.
	Cached bool `json:"cached,omitempty"`
}

// Summary is the terminal record of a /v1/compile stream: the stream
// is complete exactly when a summary line has been read.
type Summary struct {
	// Jobs is the number of JobResult lines the stream carried.
	Jobs int `json:"jobs"`
	// Errors counts result lines with a non-empty Error.
	Errors int `json:"errors"`
	// Cached counts result lines served from the cache.
	//dms:wireok pre-analyzer name: Summary.Cached (count) and JobResult.Cached (flag) never share an envelope
	Cached int `json:"cached"`
}

// summaryLine is the wire form of the terminal record.
type summaryLine struct {
	Summary *Summary `json:"summary"`
}

// EncodeSummaryLine renders the terminal stream record for a summary
// (without a trailing newline).
func EncodeSummaryLine(s Summary) ([]byte, error) {
	return json.Marshal(summaryLine{Summary: &s})
}

// DecodeStreamLine classifies and decodes one NDJSON line of a
// /v1/compile response: exactly one of the returned result and summary
// is non-nil. Unknown fields are ignored for forward compatibility.
func DecodeStreamLine(line []byte) (*JobResult, *Summary, error) {
	var probe summaryLine
	if err := json.Unmarshal(line, &probe); err != nil {
		return nil, nil, fmt.Errorf("api: bad stream line: %w", err)
	}
	if probe.Summary != nil {
		return nil, probe.Summary, nil
	}
	var rec JobResult
	if err := json.Unmarshal(line, &rec); err != nil {
		return nil, nil, fmt.Errorf("api: bad stream line: %w", err)
	}
	return &rec, nil, nil
}

// JobState is the lifecycle state of an asynchronous job resource.
// States move strictly forward; Terminal reports the absorbing ones.
type JobState string

const (
	// JobQueued: admitted, waiting for an executor slot. The only
	// state with a meaningful queue position.
	JobQueued JobState = "queued"
	// JobRunning: an executor is compiling the batch; results
	// accumulate and can already be streamed.
	JobRunning JobState = "running"
	// JobDone: every job of the batch has a result (success or per-job
	// error); the full result set is retained until the TTL.
	JobDone JobState = "done"
	// JobCanceled: canceled by DELETE /v1/jobs/{id} (or the submitting
	// connection of a synchronous wrapper hanging up). A job canceled
	// while still queued never reached the driver.
	JobCanceled JobState = "canceled"
	// JobFailed: the executor itself failed (Job.Error has the cause);
	// per-job scheduling errors do NOT fail the job — they are carried
	// in the result lines.
	JobFailed JobState = "failed"
)

// Terminal reports whether the state is absorbing: no further results
// will be produced and the stream's summary record can be trusted.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobCanceled || s == JobFailed
}

// Job is the asynchronous job resource returned by POST /v1/jobs and
// GET /v1/jobs/{id}.
type Job struct {
	// ID addresses the job on the /v1/jobs/{id} routes.
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// QueuePos is the 1-based position while queued (1 = next to run);
	// 0 once the job has left the queue.
	QueuePos int `json:"queue_pos,omitempty"`
	// Jobs is the size of the batch: the number of result lines a job
	// that runs to completion carries (the Summary.Jobs of a "done"
	// job). A canceled or failed job may carry fewer — its summary
	// counts the results actually produced.
	Jobs int `json:"jobs"`
	// Done, Errors and Cached count the results produced so far.
	Done   int `json:"done"`
	Errors int `json:"errors,omitempty"`
	//dms:wireok pre-analyzer name: Job.Cached (count) and JobResult.Cached (flag) never share an envelope
	Cached int `json:"cached,omitempty"`
	// Error is the executor failure that moved the job to "failed".
	//dms:wireok pre-analyzer name: Job.Error (string) and ErrorResponse.Error (object) never share an envelope
	Error string `json:"error,omitempty"`
	// Lifecycle timestamps, milliseconds since the Unix epoch; zero
	// (omitted) until the corresponding transition happened.
	CreatedUnixMS  int64 `json:"created_unix_ms,omitempty"`
	StartedUnixMS  int64 `json:"started_unix_ms,omitempty"`
	FinishedUnixMS int64 `json:"finished_unix_ms,omitempty"`
}

// SchedulerInfo is one entry of the GET /v1/schedulers response.
type SchedulerInfo struct {
	Name string `json:"name"`
	// Clustered reports the machine family the back-end targets.
	Clustered bool `json:"clustered"`
}

// CacheMetrics is a snapshot of the server's result-cache counters.
type CacheMetrics struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Shared     uint64 `json:"shared"` // joins of an in-flight computation
	Evictions  uint64 `json:"evictions"`
	Entries    int    `json:"entries"`
	Inflight   int    `json:"inflight"`
	MaxEntries int    `json:"max_entries"`
}

// QueueMetrics is a snapshot of the admission queue's gauges and
// counters.
type QueueMetrics struct {
	// Depth is the number of jobs queued right now; Running the number
	// currently executing; Retained the finished jobs still held for
	// their result TTL, whose results total approximately
	// RetainedBytes.
	Depth         int   `json:"depth"`
	Running       int   `json:"running"`
	Retained      int   `json:"retained"`
	RetainedBytes int64 `json:"retained_bytes"`
	// Capacity is the queue bound admissions are checked against.
	Capacity int `json:"capacity"`
	// Admitted/Rejected/Completed/Canceled are monotonic counters over
	// the server's lifetime. Rejected counts queue_full responses.
	Admitted  uint64 `json:"admitted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Canceled  uint64 `json:"canceled"`
	// Workers is the executor pool size the queue drains into.
	Workers int `json:"workers,omitempty"`
	// EWMAServiceMS is the exponentially weighted moving average of
	// completed batches' service times in milliseconds — the signal the
	// adaptive Retry-After hint scales with queue depth. Zero until the
	// first batch completes.
	EWMAServiceMS float64 `json:"ewma_service_ms,omitempty"`
}

// DispatchMetrics is a snapshot of a coordinator's compile-unit
// dispatcher: the worker-pull queue behind /v1/workers/lease.
type DispatchMetrics struct {
	// PendingUnits are queued units awaiting a lease; LeasedUnits are
	// held by workers under the ActiveLeases live leases.
	PendingUnits int `json:"pending_units"`
	LeasedUnits  int `json:"leased_units"`
	ActiveLeases int `json:"active_leases"`
	// Dispatched/Resolved/Requeued are monotonic counters: units handed
	// to the queue, units resolved by a posted result, and units
	// returned to the queue by lease expiry or nack.
	Dispatched uint64 `json:"dispatched"`
	Resolved   uint64 `json:"resolved"`
	Requeued   uint64 `json:"requeued"`
	// Workers aggregates per-worker gauges, keyed by the worker
	// identity leases are requested under (absent before any worker
	// has leased).
	//dms:wireok pre-analyzer name: QueueMetrics.Workers (pool size) and DispatchMetrics.Workers (gauge table) never share an envelope
	Workers map[string]WorkerMetrics `json:"workers,omitempty"`
}

// WorkerMetrics is one worker's row in the coordinator's dispatch
// table: throughput and chunk-sizing gauges aggregated from the
// worker's lease requests and result posts.
type WorkerMetrics struct {
	// UnitsPerSec is the worker's resolved-unit throughput since it
	// first leased.
	UnitsPerSec float64 `json:"units_per_sec"`
	// EWMAUnitMS is the per-unit service time the worker self-reported
	// with its latest lease request (0 until its calculator warms up).
	EWMAUnitMS float64 `json:"ewma_unit_ms,omitempty"`
	// CacheHitRate is the fraction of the worker's resolved units that
	// were served from its local schedule cache.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CurrentChunk is the MaxUnits the worker asked for in its latest
	// lease request, after coordinator clamping — the live output of
	// its self-scheduling formula.
	CurrentChunk int `json:"current_chunk"`
	// ResolvedUnits counts results of this worker accepted as
	// authoritative.
	ResolvedUnits uint64 `json:"resolved_units"`
	// Schedulers is the worker's latest capability advertisement
	// (empty = everything).
	Schedulers []string `json:"schedulers,omitempty"`
}

// DurabilityMetrics reports the disk-backed control plane of a
// coordinator started with a data directory.
type DurabilityMetrics struct {
	// RecoveredTasks counts the queue tasks replayed from the
	// write-ahead log when this process started; RecoveredBuffers
	// counts the result buffers rebuilt from disk segments.
	RecoveredTasks   int `json:"recovered_tasks"`
	RecoveredBuffers int `json:"recovered_buffers"`
	// WALBytes is the current size of the queue's durable log
	// (snapshot + live tail, after compaction).
	WALBytes int64 `json:"wal_bytes"`
}

// PortfolioMetrics aggregates the portfolio meta-scheduler's races
// and the optimality-gap measurements contributed by exact runs.
type PortfolioMetrics struct {
	// Races counts completed portfolio jobs.
	Races int64 `json:"races"`
	// GapObserved counts successful results that carried a proved
	// optimality bound; GapSum and GapMax aggregate the optimality gap
	// (II − optimal II, never negative) over those results.
	GapObserved int64 `json:"gap_observed"`
	GapSum      int64 `json:"gap_sum"`
	GapMax      int64 `json:"gap_max"`
	// ProvedOptimal counts results whose achieved II was proved equal
	// to the optimum (a certificate with gap zero).
	//dms:wireok pre-analyzer name: Stats.ProvedOptimal (flag) and PortfolioMetrics.ProvedOptimal (count) never share an envelope
	ProvedOptimal int64 `json:"proved_optimal"`
	// Wins, Losses and Cancels count entrant fates across races, keyed
	// by entrant name ("dms", "exact", ...).
	Wins    map[string]int64 `json:"wins,omitempty"`
	Losses  map[string]int64 `json:"losses,omitempty"`
	Cancels map[string]int64 `json:"cancels,omitempty"`
}

// ServerMetrics is the GET /v1/metrics payload.
type ServerMetrics struct {
	Requests  int64        `json:"requests"`
	Jobs      int64        `json:"jobs"`
	JobErrors int64        `json:"job_errors"`
	Cache     CacheMetrics `json:"cache"`
	Queue     QueueMetrics `json:"queue"`
	// Dispatch reports the worker-pull dispatcher (present on servers
	// that serve the /v1/workers surface; absent on older servers).
	Dispatch *DispatchMetrics `json:"dispatch,omitempty"`
	// Durability reports the durable control plane (absent on servers
	// running without a data directory).
	Durability *DurabilityMetrics `json:"durability,omitempty"`
	// Portfolio aggregates portfolio races and optimality-gap
	// measurements (absent on older servers).
	Portfolio *PortfolioMetrics `json:"portfolio,omitempty"`
}

// Health is the GET /v1/healthz payload.
type Health struct {
	Status   string `json:"status"` // "ok"
	Protocol string `json:"protocol"`
}

// LeaseRequest is the JSON body of POST /v1/workers/lease: a worker
// asking the coordinator for a chunk of compile units.
type LeaseRequest struct {
	// Protocol asserts the protocol version the worker speaks (""
	// or "v1").
	Protocol string `json:"protocol,omitempty"`
	// Worker is the caller's stable identity — the routing key that
	// affinitizes identical loops onto its warm cache. Required.
	Worker string `json:"worker"`
	// MaxUnits bounds the chunk (0 = server default; the server may
	// cap it lower). Self-scheduling workers size it from their own
	// observed per-unit service time and the Remaining depth of their
	// previous Lease, so fast workers draw large chunks and slow ones
	// small — the coordinator only clamps.
	MaxUnits int `json:"max_units,omitempty"`
	// WaitMS long-polls: with no work queued the server holds the
	// request up to this long before answering with an empty lease
	// (0 = answer immediately; the server caps the wait).
	WaitMS int `json:"wait_ms,omitempty"`
	// Schedulers advertises the scheduler names this worker can run.
	// The coordinator routes units of an advertised-anywhere scheduler
	// only to workers advertising it (falling back to anyone when no
	// live worker does). Empty advertises everything — the
	// pre-advertisement behavior.
	Schedulers []string `json:"schedulers,omitempty"`
	// EWMAUnitMS self-reports the worker's smoothed per-unit service
	// time in milliseconds (0 = not yet warmed up); the coordinator
	// republishes it on the per-worker dispatch gauges.
	EWMAUnitMS float64 `json:"ewma_unit_ms,omitempty"`
}

// WorkUnit is one leasable compile unit: a single (loop, machine,
// scheduler) triple of some batch, self-contained so a worker needs no
// other context to compile it.
type WorkUnit struct {
	// ID addresses the unit in result posts; it is unique while the
	// unit is live and opaque to workers.
	ID string `json:"id"`
	// Hash is the unit's canonical content hash — identical to the
	// coordinator's schedule-cache key, so workers can key their own
	// caches compatibly.
	Hash string `json:"hash"`
	// Loop is the canonical loop text.
	Loop string `json:"loop"`
	// Machine carries the full machine description.
	Machine MachineSpec `json:"machine"`
	// Scheduler is the registry name to schedule with.
	Scheduler string `json:"scheduler"`
	// Options tune the scheduler.
	Options Options `json:"options"`
	// TimeoutMS bounds the unit's scheduling time (0 = none).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoCache asks the worker to skip its cache lookup (results are
	// still stored), mirroring CompileRequest.NoCache.
	NoCache bool `json:"no_cache,omitempty"`
}

// Lease is the response of POST /v1/workers/lease. An empty lease
// (ID "") means no work was available within the wait budget; the
// worker re-polls after PollMS.
type Lease struct {
	ID    string     `json:"id,omitempty"`
	Units []WorkUnit `json:"units,omitempty"`
	// TTLMS is the heartbeat deadline: a lease that posts no results
	// (and no empty heartbeat) for this long has its unresolved units
	// returned to the queue.
	TTLMS int `json:"ttl_ms,omitempty"`
	// PollMS is the coordinator's re-poll hint for an empty lease.
	PollMS int `json:"poll_ms,omitempty"`
	// Remaining is the queue depth left after this lease was carved
	// out — the self-scheduling signal a worker's next MaxUnits request
	// factors against, reported here so sizing needs no second call.
	Remaining int `json:"remaining,omitempty"`
}

// UnitResult pairs one leased unit with its compile outcome. The
// result's Index is assigned by the coordinator; workers leave it 0.
type UnitResult struct {
	Unit   string    `json:"unit"`
	Result JobResult `json:"result"`
}

// WorkResultsRequest is the JSON body of POST /v1/workers/{lease}/results.
// An empty Results slice is a pure heartbeat.
type WorkResultsRequest struct {
	Protocol string       `json:"protocol,omitempty"`
	Results  []UnitResult `json:"results"`
}

// WorkResultsResponse reports what the coordinator did with a result
// post.
type WorkResultsResponse struct {
	// Acked counts results accepted as the authoritative resolution of
	// their unit. A posted result not counted here raced a lease expiry
	// — another worker owns that unit now — and was discarded.
	Acked int `json:"acked"`
	// Canceled lists still-leased units whose batch has been canceled;
	// the worker should skip compiling them and post a canceled result
	// to release them cheaply.
	//dms:wireok pre-analyzer name: WorkResultsResponse.Canceled (ID list) and QueueMetrics.Canceled (count) never share an envelope
	Canceled []string `json:"canceled,omitempty"`
}

// FormatExtra renders a Stats.Extra counter map as "k1=v1 k2=v2" with
// keys sorted, so CLI and log output is byte-deterministic across
// runs. It returns "" for an empty map.
func FormatExtra(extra map[string]int) string {
	if len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(extra))
	for k := range extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	for i, k := range keys {
		if i > 0 {
			b = append(b, ' ')
		}
		b = fmt.Appendf(b, "%s=%d", k, extra[k])
	}
	return string(b)
}
