// Package api defines version 1 of the compile service's public wire
// contract: the JSON request/response/error types, the NDJSON stream
// framing, the structured error codes and the protocol version
// handshake. It is the single source of truth shared by the server
// (internal/server), the Go SDK (pkg/dmsclient), the dmsclient CLI and
// any external client.
//
// The package deliberately imports nothing but the standard library,
// so importing it pulls in no scheduler code. Conversions between
// these wire types and the in-process driver types live next to the
// server, not here.
//
// # Endpoints
//
//	POST /v1/compile     — compile a batch; the response is an NDJSON
//	                       stream (see "Stream framing" below)
//	GET  /v1/metrics     — service and cache counters (ServerMetrics)
//	GET  /v1/schedulers  — registered back-ends ([]SchedulerInfo)
//	GET  /v1/healthz     — liveness probe (Health)
//
// The unprefixed spellings of the same routes are deprecated aliases
// kept for one release; they answer with a "Deprecation: true" header
// and a "Link" header naming the successor route.
//
// # Stream framing
//
// A /v1/compile response body is NDJSON: one JSON object per line.
// Every line but the last is a JobResult, emitted in completion order
// (reorder by Index to recover request order). The final line is a
// terminal summary record of the form
//
//	{"summary":{"jobs":N,"errors":E,"cached":C}}
//
// distinguished from result lines by its single "summary" key; use
// DecodeStreamLine to classify lines. Legacy /compile responses omit
// the summary record (their framing predates it).
//
// # Versioning
//
// The protocol version is carried in the Dms-Protocol header of every
// response and may be asserted by clients in CompileRequest.Protocol.
// Within v1, changes are additive only: new response fields may appear
// at any time, so clients MUST ignore unknown fields (every type here
// decodes tolerantly). Request fields are strict — the server rejects
// unknown request fields with invalid_request, which turns a typo'd
// option into an error instead of a silently different compile. A
// breaking change mints /v2 alongside /v1; deprecated routes keep
// answering for one release with a Deprecation header before removal.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// Version is the protocol version implemented by this package, as it
// appears in route prefixes, the Dms-Protocol header and
// CompileRequest.Protocol.
const Version = "v1"

// ProtocolHeader is the response header naming the protocol version
// the server spoke ("v1"). Clients verify it during the handshake.
const ProtocolHeader = "Dms-Protocol"

// DeprecationHeader marks responses served from a deprecated legacy
// route ("true" when present).
const DeprecationHeader = "Deprecation"

// Route paths of the v1 surface.
const (
	PathCompile    = "/v1/compile"
	PathMetrics    = "/v1/metrics"
	PathSchedulers = "/v1/schedulers"
	PathHealth     = "/v1/healthz"
)

// ErrorCode classifies every failure the service reports, both
// request-level (ErrorResponse) and per-job (JobResult.ErrorCode).
type ErrorCode string

const (
	// CodeInvalidRequest: the request body failed validation (bad JSON,
	// unknown fields, empty axes, malformed loop or machine, oversized
	// cross product).
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeUnknownScheduler: a scheduler name is not in the registry.
	CodeUnknownScheduler ErrorCode = "unknown_scheduler"
	// CodeTimeout: the per-job scheduling timeout expired. Retryable.
	CodeTimeout ErrorCode = "timeout"
	// CodeCanceled: the job was canceled (client disconnect or server
	// shutdown) before it finished. Retryable.
	CodeCanceled ErrorCode = "canceled"
	// CodeNotFound: no route matches the request path.
	CodeNotFound ErrorCode = "not_found"
	// CodeMethodNotAllowed: the route exists but not for this method.
	CodeMethodNotAllowed ErrorCode = "method_not_allowed"
	// CodeInternal: any other server-side failure.
	CodeInternal ErrorCode = "internal"
)

// Retryable reports whether a job that failed with this code may
// succeed if resubmitted unchanged (the failure was a scheduling
// deadline or cancellation, not a property of the job itself).
func (c ErrorCode) Retryable() bool {
	return c == CodeTimeout || c == CodeCanceled
}

// HTTPStatus is the status the service pairs with a request-level
// error of this code.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeInvalidRequest, CodeUnknownScheduler:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeTimeout:
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

// Error is a structured service error.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// ErrorResponse is the JSON body of every non-200 response.
type ErrorResponse struct {
	Error Error `json:"error"`
}

// Options is the scheduler-independent tuning surface, broadcast to
// every job of a request. It mirrors the driver's options; fields a
// back-end does not understand are ignored by it.
type Options struct {
	// BudgetRatio bounds scheduling attempts at BudgetRatio × ops per
	// candidate II (0 = the scheduler's default).
	BudgetRatio int `json:"budget_ratio,omitempty"`
	// MaxII caps the candidate initiation interval (0 = derived bound).
	MaxII int `json:"max_ii,omitempty"`
	// DisableChains and OneDirectionOnly are the DMS ablation switches.
	DisableChains    bool `json:"disable_chains,omitempty"`
	OneDirectionOnly bool `json:"one_direction_only,omitempty"`
	// RefinementPasses and LoadSlack tune the two-phase baseline's
	// partitioner (0 = defaults).
	RefinementPasses int `json:"refinement_passes,omitempty"`
	LoadSlack        int `json:"load_slack,omitempty"`
}

// MachineSpec names one target machine: either a conventional family
// member by cluster count, or a full JSON machine description.
type MachineSpec struct {
	// Clusters picks the conventional clustered machine of that size,
	// or the equivalent unclustered machine with Unclustered set.
	Clusters    int  `json:"clusters,omitempty"`
	Unclustered bool `json:"unclustered,omitempty"`
	// Config, when present, is a full machine description in the
	// server's JSON config format and overrides the other fields.
	Config json.RawMessage `json:"config,omitempty"`
}

// CompileRequest is the JSON body of POST /v1/compile. The job list is
// the (loops × machines × schedulers) cross product in deterministic
// order — loops outermost, schedulers innermost — so job index i maps
// back to axes as
//
//	loop      i / (len(machines) * len(schedulers))
//	machine   (i / len(schedulers)) % len(machines)
//	scheduler i % len(schedulers)
type CompileRequest struct {
	// Protocol asserts the protocol version the client speaks (""
	// or "v1"); any other value is rejected with invalid_request.
	Protocol string `json:"protocol,omitempty"`
	// Loops are loop files in the service's textual loop format.
	Loops []string `json:"loops"`
	// Machines select the targets.
	Machines []MachineSpec `json:"machines"`
	// Schedulers are registry names (see GET /v1/schedulers).
	Schedulers []string `json:"schedulers"`
	// Options is broadcast to every job.
	Options Options `json:"options"`
	// TimeoutMS bounds each job's scheduling time in milliseconds; it
	// can only tighten the server-side timeout, never extend it.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoCache bypasses the cache lookup (results are still stored),
	// for measurements that need a cold compile.
	NoCache bool `json:"no_cache,omitempty"`
}

// Jobs returns the size of the request's job cross product.
func (r *CompileRequest) Jobs() int {
	return len(r.Loops) * len(r.Machines) * len(r.Schedulers)
}

// JobAxes maps a job index back to its (loop, machine, scheduler)
// indices in the request, inverting the cross-product order.
func (r *CompileRequest) JobAxes(index int) (loop, machine, scheduler int) {
	ns, nm := len(r.Schedulers), len(r.Machines)
	return index / (nm * ns), (index / ns) % nm, index % ns
}

// Stats is the normalized scheduling report of one job.
type Stats struct {
	MII        int `json:"mii"`        // lower bound the search started from
	II         int `json:"ii"`         // achieved initiation interval
	IIsTried   int `json:"iis_tried"`  // candidate IIs attempted
	Placements int `json:"placements"` // placement operations across all IIs
	Evictions  int `json:"evictions"`  // operations unscheduled by backtracking
	// Extra holds scheduler-specific counters under documented keys.
	Extra map[string]int `json:"extra,omitempty"`
}

// ScheduleMetrics are the dynamic cycle/IPC measurements of one
// schedule at the loop's trip count.
type ScheduleMetrics struct {
	II      int     `json:"ii"`
	Len     int     `json:"len"`
	Stages  int     `json:"stages"`
	Trip    int     `json:"trip"`
	Useful  int     `json:"useful"` // useful (non-copy/move) static operations
	Cycles  int64   `json:"cycles"`
	IPC     float64 `json:"ipc"`
	MovesIn int     `json:"moves_in"` // copy+move operations in the final graph
}

// JobResult is one result line of a /v1/compile response stream.
type JobResult struct {
	// Index is the job's position in request order; lines arrive in
	// completion order, so clients reorder by Index.
	Index int `json:"index"`
	// Job names the (loop, machine, scheduler) triple.
	Job string `json:"job"`
	// Error and ErrorCode are set instead of the remaining fields when
	// the job failed. Jobs with a Retryable code may be resubmitted.
	Error     string    `json:"error,omitempty"`
	ErrorCode ErrorCode `json:"error_code,omitempty"`

	MII      int              `json:"mii,omitempty"`
	II       int              `json:"ii,omitempty"`
	Stats    *Stats           `json:"stats,omitempty"`
	Metrics  *ScheduleMetrics `json:"metrics,omitempty"`
	Schedule string           `json:"schedule,omitempty"`

	// Cached reports that the result was served from the cache (or a
	// shared in-flight computation) rather than compiled for this job.
	Cached bool `json:"cached,omitempty"`
}

// Summary is the terminal record of a /v1/compile stream: the stream
// is complete exactly when a summary line has been read.
type Summary struct {
	// Jobs is the number of JobResult lines the stream carried.
	Jobs int `json:"jobs"`
	// Errors counts result lines with a non-empty Error.
	Errors int `json:"errors"`
	// Cached counts result lines served from the cache.
	Cached int `json:"cached"`
}

// summaryLine is the wire form of the terminal record.
type summaryLine struct {
	Summary *Summary `json:"summary"`
}

// EncodeSummaryLine renders the terminal stream record for a summary
// (without a trailing newline).
func EncodeSummaryLine(s Summary) ([]byte, error) {
	return json.Marshal(summaryLine{Summary: &s})
}

// DecodeStreamLine classifies and decodes one NDJSON line of a
// /v1/compile response: exactly one of the returned result and summary
// is non-nil. Unknown fields are ignored for forward compatibility.
func DecodeStreamLine(line []byte) (*JobResult, *Summary, error) {
	var probe summaryLine
	if err := json.Unmarshal(line, &probe); err != nil {
		return nil, nil, fmt.Errorf("api: bad stream line: %w", err)
	}
	if probe.Summary != nil {
		return nil, probe.Summary, nil
	}
	var rec JobResult
	if err := json.Unmarshal(line, &rec); err != nil {
		return nil, nil, fmt.Errorf("api: bad stream line: %w", err)
	}
	return &rec, nil, nil
}

// SchedulerInfo is one entry of the GET /v1/schedulers response.
type SchedulerInfo struct {
	Name string `json:"name"`
	// Clustered reports the machine family the back-end targets.
	Clustered bool `json:"clustered"`
}

// CacheMetrics is a snapshot of the server's result-cache counters.
type CacheMetrics struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Shared     uint64 `json:"shared"` // joins of an in-flight computation
	Evictions  uint64 `json:"evictions"`
	Entries    int    `json:"entries"`
	Inflight   int    `json:"inflight"`
	MaxEntries int    `json:"max_entries"`
}

// ServerMetrics is the GET /v1/metrics payload.
type ServerMetrics struct {
	Requests  int64        `json:"requests"`
	Jobs      int64        `json:"jobs"`
	JobErrors int64        `json:"job_errors"`
	Cache     CacheMetrics `json:"cache"`
}

// Health is the GET /v1/healthz payload.
type Health struct {
	Status   string `json:"status"` // "ok"
	Protocol string `json:"protocol"`
}

// FormatExtra renders a Stats.Extra counter map as "k1=v1 k2=v2" with
// keys sorted, so CLI and log output is byte-deterministic across
// runs. It returns "" for an empty map.
func FormatExtra(extra map[string]int) string {
	if len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(extra))
	for k := range extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	for i, k := range keys {
		if i > 0 {
			b = append(b, ' ')
		}
		b = fmt.Appendf(b, "%s=%d", k, extra[k])
	}
	return string(b)
}
