package repro_test

// BenchmarkDistributedDrain measures the end-to-end drain of a
// generated 1k-loop corpus through the worker-pull surface with a
// heterogeneous in-process fleet (one worker deliberately 4× slower),
// in two modes:
//
//	fixed-chunk-8  — the pre-self-scheduling baseline: every lease
//	                 hands out exactly 8 units and every unit posts
//	                 its result in its own round trip.
//	adaptive       — self-sized chunks (service-time EWMA × factoring
//	                 bound) and flush-window result batches.
//
// Reported metrics: wall-clock makespan, result POSTs, and lease RPCs
// per drain. BENCH_PR10.json records the checked-in trajectory; the
// acceptance bar is adaptive makespan ≥ 1.5× better and POSTs ≥ 4×
// fewer on this workload.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	api "repro/api/v1"
	"repro/internal/loop"
	"repro/internal/perfect"
	"repro/internal/server"
	"repro/internal/worker"
	"repro/pkg/dmsclient"
)

const drainCorpus = 1000 // loops drained per benchmark iteration

// rpcCounter wraps the coordinator handler and tallies worker-protocol
// round trips.
type rpcCounter struct {
	inner  http.Handler
	leases atomic.Int64
	posts  atomic.Int64
}

func (c *rpcCounter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		switch {
		case r.URL.Path == api.PathWorkersLease:
			c.leases.Add(1)
		case strings.HasPrefix(r.URL.Path, "/v1/workers/") && strings.HasSuffix(r.URL.Path, "/results"):
			c.posts.Add(1)
		}
	}
	c.inner.ServeHTTP(w, r)
}

// drainOnce runs one complete drain: a fresh durable coordinator
// (WAL-backed queue and result store, synced — the deployment the ack
// path is built for), a fast and a 4×-slow worker, one batch covering
// the whole corpus.
func drainOnce(b *testing.B, req api.CompileRequest, fixed bool) (makespan time.Duration, posts, leases int64) {
	b.Helper()
	svc, err := server.Open(server.Options{
		Distribute:   true,
		QueueWorkers: 2,
		DataDir:      b.TempDir(),
		Fsync:        true,
	})
	if err != nil {
		b.Fatal(err)
	}
	counter := &rpcCounter{inner: svc.Handler()}
	ts := httptest.NewServer(counter)
	defer svc.Close()
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	const slowdown = 4
	baseDelay := 500 * time.Microsecond
	for _, opt := range []worker.Options{
		{ID: "fast", Parallelism: 8, UnitDelay: baseDelay},
		{ID: "slow", Parallelism: 8, UnitDelay: slowdown * baseDelay},
	} {
		opt.Coordinator = ts.URL
		opt.Wait = 200 * time.Millisecond
		if fixed {
			opt.Chunk = 8
			opt.FixedChunk = true
			opt.PostWindow = -1 // pre-batching behavior: one POST per unit
		} else {
			opt.ChunkTarget = 150 * time.Millisecond
		}
		wg.Add(1)
		go func(opt worker.Options) {
			defer wg.Done()
			worker.Run(ctx, opt)
		}(opt)
	}

	start := time.Now()
	_, sum, err := dmsclient.New(ts.URL).CompileAll(ctx, req)
	if err != nil {
		b.Fatal(err)
	}
	makespan = time.Since(start)
	if sum.Errors != 0 || sum.Jobs != req.Jobs() {
		b.Fatalf("drain summary = %+v, want %d clean jobs", sum, req.Jobs())
	}
	cancel()
	wg.Wait()
	return makespan, counter.posts.Load(), counter.leases.Load()
}

func benchDrain(b *testing.B, req api.CompileRequest, fixed bool) {
	var makespanMS, posts, leases float64
	for i := 0; i < b.N; i++ {
		m, p, l := drainOnce(b, req, fixed)
		makespanMS += float64(m.Milliseconds())
		posts += float64(p)
		leases += float64(l)
	}
	n := float64(b.N)
	b.ReportMetric(makespanMS/n, "makespan_ms")
	b.ReportMetric(posts/n, "result_posts")
	b.ReportMetric(leases/n, "lease_rpcs")
	b.ReportMetric(float64(req.Jobs()), "units")
}

func BenchmarkDistributedDrain(b *testing.B) {
	loops := perfect.CorpusN(perfect.DefaultSeed, drainCorpus)
	texts := make([]string, len(loops))
	for i, l := range loops {
		texts[i] = loop.Format(l)
	}
	req := api.CompileRequest{
		Protocol:   api.Version,
		Loops:      texts,
		Machines:   []api.MachineSpec{{Clusters: 2, Unclustered: true}},
		Schedulers: []string{"ims"},
	}
	b.Run("fixed-chunk-8", func(b *testing.B) { benchDrain(b, req, true) })
	b.Run("adaptive", func(b *testing.B) { benchDrain(b, req, false) })
}
