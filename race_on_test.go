//go:build race

package repro_test

// raceEnabled reports whether the race detector is compiled in; see
// race_off_test.go.
const raceEnabled = true
