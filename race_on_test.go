//go:build race

package repro_test

// raceEnabled reports whether the race detector is compiled in; the
// allocation-budget gate skips under -race, where the instrumented
// runtime inflates allocation counts. Exactly one of
// race_on_test.go/race_off_test.go builds per tag configuration, and
// CI vets both (`go vet ./...` and `go vet -tags race ./...`).
const raceEnabled = true
