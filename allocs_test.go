package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/perfect"
)

// scheduleAllocBudget is the checked-in allocation baseline for one
// full DMS compile (graph build + copy insertion + core.Schedule) on
// the 8-cluster benchmark configuration. PR 6's raw-speed pass
// measured ~207 allocs/op (BENCH_PR6.json); the budget leaves ~50%
// headroom for corpus drift while still catching any regression that
// reintroduces per-candidate-II cloning or per-call scratch (the
// pre-PR 6 code sat at ~1631).
const scheduleAllocBudget = 320

// TestScheduleAllocBudget fails when core.Schedule's allocation rate
// regresses above the checked-in baseline — the guard behind the CI
// benchmark smoke job.
func TestScheduleAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	sample := perfect.CorpusN(perfect.DefaultSeed, 32)
	lat := machine.DefaultLatencies()
	m := machine.Clustered(8)
	i := 0
	avg := testing.AllocsPerRun(64, func() {
		g := ddg.FromLoop(sample[i%len(sample)], lat)
		i++
		ddg.InsertCopies(g, ddg.MaxUses)
		if _, _, err := core.Schedule(g, m, core.Options{}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("core.Schedule pipeline: %.1f allocs/op (budget %d)", avg, scheduleAllocBudget)
	if avg > scheduleAllocBudget {
		t.Fatalf("core.Schedule pipeline allocates %.1f/op, above the checked-in budget of %d — "+
			"the scheduling inner loop has regressed (see BENCH_PR6.json)", avg, scheduleAllocBudget)
	}
}
