package repro_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/perfect"
	"repro/internal/sat"
)

// scheduleAllocBudget is the checked-in allocation baseline for one
// full DMS compile (graph build + copy insertion + core.Schedule) on
// the 8-cluster benchmark configuration. PR 6's raw-speed pass
// measured ~207 allocs/op (BENCH_PR6.json); the budget leaves ~50%
// headroom for corpus drift while still catching any regression that
// reintroduces per-candidate-II cloning or per-call scratch (the
// pre-PR 6 code sat at ~1631).
const scheduleAllocBudget = 320

// TestScheduleAllocBudget fails when core.Schedule's allocation rate
// regresses above the checked-in baseline — the guard behind the CI
// benchmark smoke job.
func TestScheduleAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	sample := perfect.CorpusN(perfect.DefaultSeed, 32)
	lat := machine.DefaultLatencies()
	m := machine.Clustered(8)
	i := 0
	avg := testing.AllocsPerRun(64, func() {
		g := ddg.FromLoop(sample[i%len(sample)], lat)
		i++
		ddg.InsertCopies(g, ddg.MaxUses)
		if _, _, err := core.Schedule(g, m, core.Options{}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("core.Schedule pipeline: %.1f allocs/op (budget %d)", avg, scheduleAllocBudget)
	if avg > scheduleAllocBudget {
		t.Fatalf("core.Schedule pipeline allocates %.1f/op, above the checked-in budget of %d — "+
			"the scheduling inner loop has regressed (see BENCH_PR6.json)", avg, scheduleAllocBudget)
	}
}

// satSolveAllocBudget bounds the steady-state allocation rate of one
// full Reset + encode + Solve cycle on a reused sat.Solver. The solver
// keeps its trail, watcher lists and clause arena across Reset, and the
// hot propagation loop (//dms:hotpath in internal/sat) must not
// allocate at all, so after the warm-up solve the whole cycle settles
// at zero; the budget leaves slack for incidental runtime noise only.
const satSolveAllocBudget = 8

// TestSATSolveAllocBudget fails when the SAT inner loop starts
// allocating — the exact back-end issues thousands of conflicts per
// candidate II, so a single alloc on the propagation path multiplies
// into GC pressure across the whole portfolio race.
func TestSATSolveAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	// Pigeonhole PHP(6,5): small, UNSAT, and conflict-dense — every
	// solve exercises propagation, 1UIP learning and backtracking.
	const pigeons, holes = 6, 5
	s := sat.New()
	lits := make([]sat.Lit, 0, holes)
	ctx := context.Background()
	avg := testing.AllocsPerRun(32, func() {
		s.Reset(pigeons * holes)
		v := func(p, h int) int { return p*holes + h }
		for p := 0; p < pigeons; p++ {
			lits = lits[:0]
			for h := 0; h < holes; h++ {
				lits = append(lits, sat.Pos(v(p, h)))
			}
			s.AddClause(lits...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 < pigeons; p1++ {
				for p2 := p1 + 1; p2 < pigeons; p2++ {
					s.AddClause(sat.Neg(v(p1, h)), sat.Neg(v(p2, h)))
				}
			}
		}
		ok, err := s.Solve(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("pigeonhole PHP(6,5) reported satisfiable")
		}
	})
	t.Logf("sat solve cycle: %.1f allocs/op (budget %d)", avg, satSolveAllocBudget)
	if avg > satSolveAllocBudget {
		t.Fatalf("sat Reset+encode+Solve allocates %.1f/op, above the checked-in budget of %d — "+
			"the propagation hot path has regressed", avg, satSolveAllocBudget)
	}
}
