// Package dmsclient is the Go SDK for the compile service: a typed
// client over the repro/api/v1 wire contract with a streaming result
// iterator, index-order reassembly, automatic retry of canceled and
// timed-out jobs, and first-class support for the asynchronous job
// resource API — submit, poll, resumable result streams, cancel.
//
// A Client wraps one service base URL and an http.Client whose
// transport pools connections, so successive requests (including the
// single-job resubmissions the retry path issues) reuse TCP
// connections:
//
//	cli := dmsclient.New("http://localhost:8080")
//	for rec, err := range cli.Compile(ctx, req) {
//		if err != nil {
//			return err
//		}
//		fmt.Println(rec.Index, rec.Job, rec.II)
//	}
//
// The asynchronous path decouples submission from result transfer:
//
//	job, err := cli.Submit(ctx, req)      // admission-controlled, 202
//	job, err = cli.Wait(ctx, job.ID)      // poll to a terminal state
//	recs, sum, err := cli.ResultsAll(ctx, job.ID, job.Jobs)
//
// Submit honors the server's admission control: a 429 queue_full
// response is retried after the server-sent Retry-After hint (falling
// back to exponential backoff when absent). Results and ResultsAll
// survive dropped connections by re-attaching to the job's retained
// result buffer with the ?from= resume offset, so a mid-stream
// disconnect costs one round trip, not a recompute. All retry waiting
// is bounded by a per-call budget (WithMaxRetryWait); when the budget
// runs out, the returned error says how long the client waited.
//
// Results arrive in completion order; CompileAll and ResultsAll
// reassemble them in request (index) order. Jobs that fail with a
// retryable code (timeout, canceled) on the synchronous path are
// resubmitted as single-job requests — with per-job backoff that also
// prefers a server-sent Retry-After — before their result is
// surfaced, so a transient deadline on a loaded server degrades into
// latency, not an error row.
//
// Every response is checked against the protocol version handshake:
// the client announces "v1" in the request and verifies the server's
// Dms-Protocol header before trusting the payload.
package dmsclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"strconv"
	"strings"
	"time"

	api "repro/api/v1"
)

// maxStreamLine bounds one NDJSON line of a compile response (rendered
// schedules grow with loop size, but 4 MiB is far beyond any real one).
const maxStreamLine = 4 << 20

// DefaultMaxRetryWait bounds the cumulative backoff a single SDK call
// spends waiting between retries when WithMaxRetryWait is unset.
const DefaultMaxRetryWait = 30 * time.Second

// Client speaks protocol v1 to one compile service. Create it with
// New; it is safe for concurrent use.
type Client struct {
	base         string
	hc           *http.Client
	retries      int
	backoff      time.Duration
	maxRetryWait time.Duration
	poll         time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (custom
// transport, timeout or middleware).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetries sets how many times a retryable failure — a job that
// timed out or was canceled, a dropped results connection — is retried
// before it is surfaced. 0 disables retries; the default is 2.
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the base backoff before the first retry; it doubles
// on every further attempt. A server-sent Retry-After hint takes
// precedence over the computed backoff. The default is 100 ms.
func WithBackoff(d time.Duration) Option {
	return func(c *Client) { c.backoff = d }
}

// WithMaxRetryWait caps the cumulative time one SDK call may spend
// sleeping between retries (exponential backoff and Retry-After hints
// combined). When the budget runs out, calls that fail outright —
// Submit, Results, a queue_full resubmission — return an error
// stating how long the client waited; the synchronous per-job retry
// path instead stops retrying and surfaces the job's original
// retryable failure row. A value <= 0 selects DefaultMaxRetryWait,
// like the package's other zero-means-default knobs; to disable retry
// waiting entirely, use WithRetries(0) for result retries and a small
// positive budget for submissions.
func WithMaxRetryWait(d time.Duration) Option {
	return func(c *Client) { c.maxRetryWait = d }
}

// maxWait resolves the effective retry-wait budget.
func (c *Client) maxWait() time.Duration {
	if c.maxRetryWait > 0 {
		return c.maxRetryWait
	}
	return DefaultMaxRetryWait
}

// WithPollInterval sets how often Wait polls a job's state. The
// default is 100 ms.
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) { c.poll = d }
}

// New returns a client for the service at baseURL (scheme and host,
// e.g. "http://localhost:8080"; any trailing slash is trimmed).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:         strings.TrimRight(baseURL, "/"),
		hc:           &http.Client{},
		retries:      2,
		backoff:      100 * time.Millisecond,
		maxRetryWait: DefaultMaxRetryWait,
		poll:         100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// retryBudget meters the cumulative backoff of one SDK call.
type retryBudget struct {
	c      *Client
	waited time.Duration
}

func (c *Client) newBudget() *retryBudget { return &retryBudget{c: c} }

// minRetryWait floors every budgeted backoff: a zero or negative wait
// (WithBackoff(0), a missing Retry-After hint, shift overflow) must
// still consume budget, or an uncapped retry loop against a saturated
// server would spin hot forever.
const minRetryWait = 25 * time.Millisecond

// sleep waits before retry number attempt (0-based), preferring the
// server-sent Retry-After hint carried by lastErr over the client's
// exponential backoff. It fails once the cumulative wait would exceed
// the budget, with an error that reports the time already spent
// waiting and wraps lastErr.
func (b *retryBudget) sleep(ctx context.Context, attempt int, lastErr error) error {
	d := b.c.backoff << attempt
	var apiErr *api.Error
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > 0 {
		d = apiErr.RetryAfter
	}
	if d < minRetryWait {
		d = minRetryWait
	}
	if limit := b.c.maxWait(); b.waited+d > limit {
		return fmt.Errorf("dmsclient: retry budget exhausted (waited %v of %v): %w",
			b.waited.Round(time.Millisecond), limit, lastErr)
	}
	if !sleepCtx(ctx, d) {
		return ctx.Err()
	}
	b.waited += d
	return nil
}

// checkProtocol enforces the version handshake on a response.
func checkProtocol(resp *http.Response) error {
	if got := resp.Header.Get(api.ProtocolHeader); got != api.Version {
		return fmt.Errorf("dmsclient: server spoke protocol %q, want %q (is this a %s service?)",
			got, api.Version, api.Version)
	}
	return nil
}

// decodeError turns a non-2xx response into the *api.Error it carries
// (or a generic error when the body is not the structured form),
// attaching the Retry-After backoff hint when the server sent one.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var er api.ErrorResponse
	if err := json.Unmarshal(body, &er); err == nil && er.Error.Code != "" {
		if secs, err := strconv.Atoi(resp.Header.Get(api.RetryAfterHeader)); err == nil && secs > 0 {
			er.Error.RetryAfter = time.Duration(secs) * time.Second
		}
		return &er.Error
	}
	return fmt.Errorf("dmsclient: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

// do issues one request and verifies status and protocol handshake.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if err := checkProtocol(resp); err != nil {
		resp.Body.Close()
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp, nil
}

// getJSON fetches path and decodes the body into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health probes GET /v1/healthz.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	if err := c.getJSON(ctx, api.PathHealth, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Schedulers lists the server's registered back-ends.
func (c *Client) Schedulers(ctx context.Context) ([]api.SchedulerInfo, error) {
	var s []api.SchedulerInfo
	if err := c.getJSON(ctx, api.PathSchedulers, &s); err != nil {
		return nil, err
	}
	return s, nil
}

// Metrics fetches the service, cache and queue counters.
func (c *Client) Metrics(ctx context.Context) (*api.ServerMetrics, error) {
	var m api.ServerMetrics
	if err := c.getJSON(ctx, api.PathMetrics, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Submit posts req to POST /v1/jobs and returns the created job
// resource. A queue_full rejection is retried after the server-sent
// Retry-After hint (or the exponential backoff when absent) until the
// retry-wait budget runs out.
func (c *Client) Submit(ctx context.Context, req api.CompileRequest) (*api.Job, error) {
	if req.Protocol == "" {
		req.Protocol = api.Version
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	budget := c.newBudget()
	for attempt := 0; ; attempt++ {
		resp, err := c.do(ctx, http.MethodPost, api.PathJobs, bytes.NewReader(body))
		if err != nil {
			var apiErr *api.Error
			if errors.As(err, &apiErr) && apiErr.Code == api.CodeQueueFull {
				if berr := budget.sleep(ctx, attempt, err); berr != nil {
					return nil, berr
				}
				continue
			}
			return nil, err
		}
		var job api.Job
		decErr := json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if decErr != nil {
			return nil, decErr
		}
		return &job, nil
	}
}

// Job polls GET /v1/jobs/{id} for the job's current snapshot.
func (c *Client) Job(ctx context.Context, id string) (*api.Job, error) {
	var j api.Job
	if err := c.getJSON(ctx, api.JobPath(id), &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Cancel requests cancellation via DELETE /v1/jobs/{id} and returns
// the resulting snapshot (idempotent on terminal jobs).
func (c *Client) Cancel(ctx context.Context, id string) (*api.Job, error) {
	resp, err := c.do(ctx, http.MethodDelete, api.JobPath(id), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var j api.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Wait polls the job until it reaches a terminal state (or ctx ends),
// returning the terminal snapshot.
func (c *Client) Wait(ctx context.Context, id string) (*api.Job, error) {
	poll := c.poll
	if poll <= 0 {
		poll = minRetryWait // a zero interval must not hot-spin the GET loop
	}
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		if !sleepCtx(ctx, poll) {
			return nil, ctx.Err()
		}
	}
}

// Results streams the job's result lines in completion order,
// re-attaching with the ?from= resume offset when the connection
// drops mid-stream, until the terminal summary record has been read.
// The cumulative line count is verified against the summary. A
// transport failure that outlasts the retry budget (or the configured
// attempts without progress) is yielded once as a non-nil error.
func (c *Client) Results(ctx context.Context, id string) iter.Seq2[api.JobResult, error] {
	return func(yield func(api.JobResult, error) bool) {
		from := 0
		budget := c.newBudget()
		attempt := 0
		var lastErr error
		for {
			if attempt > 0 {
				if attempt > c.retries {
					yield(api.JobResult{}, fmt.Errorf("dmsclient: results stream for job %s failed after %d attempts: %w", id, attempt, lastErr))
					return
				}
				if berr := budget.sleep(ctx, attempt-1, lastErr); berr != nil {
					yield(api.JobResult{}, berr)
					return
				}
			}
			resp, err := c.do(ctx, http.MethodGet, api.JobResultsPath(id, from), nil)
			if err != nil {
				var apiErr *api.Error
				if errors.As(err, &apiErr) && !apiErr.Code.Retryable() {
					// 404 after TTL expiry, invalid offset, ...: final.
					yield(api.JobResult{}, err)
					return
				}
				if ctx.Err() != nil {
					yield(api.JobResult{}, ctx.Err())
					return
				}
				attempt++
				lastErr = err
				continue
			}
			progressed, done := c.scanResults(resp, &from, yield)
			if done {
				return
			}
			// Dropped mid-stream: any progress re-arms the attempt
			// counter — the offset advanced, so this is a fresh resume,
			// not a repeat of a failing one.
			if progressed {
				attempt = 0
			}
			attempt++
			lastErr = fmt.Errorf("dmsclient: results stream for job %s dropped at offset %d", id, from)
		}
	}
}

// scanResults reads one results connection, yielding records and
// advancing the resume offset. done reports that the stream is
// finished — the summary record arrived (verified against the offset)
// or the consumer stopped the iteration or a fatal decode error was
// yielded; !done means the connection dropped and the caller should
// re-attach at *from.
func (c *Client) scanResults(resp *http.Response, from *int, yield func(api.JobResult, error) bool) (progressed, done bool) {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxStreamLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec, sum, err := api.DecodeStreamLine(line)
		if err != nil {
			yield(api.JobResult{}, err)
			return progressed, true
		}
		if sum != nil {
			if sum.Jobs != *from {
				yield(api.JobResult{}, fmt.Errorf("dmsclient: stream carried %d results but the summary counts %d", *from, sum.Jobs))
			}
			return progressed, true
		}
		*from++
		progressed = true
		if !yield(*rec, nil) {
			return progressed, true
		}
	}
	return progressed, false
}

// streamOnce submits req and invokes fn for every result line, in
// completion order, without any retry handling. It returns the
// terminal summary record, erroring if the stream ends without one
// (truncated response) or carries a different number of results than
// the summary claims.
func (c *Client) streamOnce(ctx context.Context, req api.CompileRequest, fn func(api.JobResult) bool) (*api.Summary, error) {
	if req.Protocol == "" {
		req.Protocol = api.Version
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, api.PathCompile, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxStreamLine)
	lines := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec, sum, err := api.DecodeStreamLine(line)
		if err != nil {
			return nil, err
		}
		if sum != nil {
			if sum.Jobs != lines {
				return nil, fmt.Errorf("dmsclient: stream carried %d results but the summary counts %d", lines, sum.Jobs)
			}
			return sum, nil
		}
		lines++
		if !fn(*rec) {
			return nil, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dmsclient: reading stream: %w", err)
	}
	return nil, fmt.Errorf("dmsclient: stream ended after %d results without a summary record", lines)
}

// Compile submits req synchronously and returns the results as a
// streaming iterator in completion order (reorder by Index for request
// order; CompileAll does this for you). A queue_full admission
// rejection is retried after the server's Retry-After hint, like
// Submit. Jobs whose failure is retryable are resubmitted up to the
// configured retry budget before being yielded, so a yielded
// timeout/cancellation is final. Any other transport or protocol
// failure is yielded once as a non-nil error and ends the stream.
func (c *Client) Compile(ctx context.Context, req api.CompileRequest) iter.Seq2[api.JobResult, error] {
	return func(yield func(api.JobResult, error) bool) {
		stopped := false
		budget := c.newBudget()
		for attempt := 0; ; attempt++ {
			yielded := 0
			_, err := c.streamOnce(ctx, req, func(rec api.JobResult) bool {
				yielded++
				// The index bound guards retryJob's axis lookup against a
				// non-conforming server: an out-of-range index is passed
				// through for CompileAll (or the caller) to reject, never
				// used to index the request.
				if rec.ErrorCode.Retryable() && c.retries > 0 && ctx.Err() == nil &&
					rec.Index >= 0 && rec.Index < req.Jobs() {
					rec = c.retryJob(ctx, &req, rec, budget)
				}
				if !yield(rec, nil) {
					stopped = true
					return false
				}
				return true
			})
			if err == nil || stopped {
				return
			}
			// Admission control happens before any result line, so a
			// queue_full with nothing yielded is safe to resubmit whole.
			var apiErr *api.Error
			if yielded == 0 && errors.As(err, &apiErr) && apiErr.Code == api.CodeQueueFull && ctx.Err() == nil {
				if berr := budget.sleep(ctx, attempt, err); berr != nil {
					yield(api.JobResult{}, berr)
					return
				}
				continue
			}
			yield(api.JobResult{}, err)
			return
		}
	}
}

// retryJob resubmits one failed job as a single-job request, returning
// either the first non-retryable outcome (success or hard failure) or,
// with the attempt or wait budget exhausted, the last failure. The
// backoff before each attempt prefers a server-sent Retry-After hint
// (a 429 on the resubmission itself); the shared budget caps the
// call's total wait. The returned result keeps the job's index in the
// original request.
func (c *Client) retryJob(ctx context.Context, req *api.CompileRequest, failed api.JobResult, budget *retryBudget) api.JobResult {
	li, mi, si := req.JobAxes(failed.Index)
	sub := api.CompileRequest{
		Protocol:   api.Version,
		Loops:      []string{req.Loops[li]},
		Machines:   []api.MachineSpec{req.Machines[mi]},
		Schedulers: []string{req.Schedulers[si]},
		Options:    req.Options,
		TimeoutMS:  req.TimeoutMS,
		NoCache:    req.NoCache,
	}
	var lastErr error
	for attempt := 0; attempt < c.retries; attempt++ {
		if budget.sleep(ctx, attempt, lastErr) != nil {
			return failed // wait budget exhausted: the original failure stands
		}
		var got *api.JobResult
		_, err := c.streamOnce(ctx, sub, func(rec api.JobResult) bool {
			got = &rec
			return true
		})
		if err != nil || got == nil {
			lastErr = err // transport trouble (or a 429 with its hint): the failure stands unless a later attempt lands
			continue
		}
		got.Index = failed.Index
		if got.Error == "" || !got.ErrorCode.Retryable() {
			return *got
		}
		failed = *got
		lastErr = nil
	}
	return failed
}

// LeaseWork posts to POST /v1/workers/lease: the worker half of the
// distributed execution protocol. The returned lease is empty (ID "")
// when the coordinator had no work within the request's wait budget;
// re-poll after the lease's PollMS hint. Plain transport plumbing —
// the pull loop around it lives in internal/worker.
func (c *Client) LeaseWork(ctx context.Context, req api.LeaseRequest) (*api.Lease, error) {
	if req.Protocol == "" {
		req.Protocol = api.Version
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, api.PathWorkersLease, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var lease api.Lease
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		return nil, err
	}
	return &lease, nil
}

// PushWorkResults posts unit results (or, with an empty slice, a pure
// heartbeat) to POST /v1/workers/{lease}/results. A lease the
// coordinator no longer honors surfaces as an *api.Error with code
// lease_expired — the worker must drop the lease's remaining work.
func (c *Client) PushWorkResults(ctx context.Context, lease string, results []api.UnitResult) (*api.WorkResultsResponse, error) {
	body, err := json.Marshal(api.WorkResultsRequest{Protocol: api.Version, Results: results})
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, api.WorkerResultsPath(lease), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out api.WorkResultsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// sleepCtx sleeps for d unless ctx ends first; it reports whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// collect reassembles a result stream of n jobs in request (index)
// order, verifying that every job arrived exactly once, and recomputes
// the summary over the final results.
func collect(seq iter.Seq2[api.JobResult, error], n int) ([]api.JobResult, *api.Summary, error) {
	out := make([]api.JobResult, n)
	seen := make([]bool, n)
	count := 0
	for rec, err := range seq {
		if err != nil {
			return nil, nil, err
		}
		if rec.Index < 0 || rec.Index >= n {
			return nil, nil, fmt.Errorf("dmsclient: result index %d out of range [0,%d)", rec.Index, n)
		}
		if seen[rec.Index] {
			return nil, nil, fmt.Errorf("dmsclient: job %d streamed twice", rec.Index)
		}
		seen[rec.Index] = true
		out[rec.Index] = rec
		count++
	}
	if count != n {
		return nil, nil, fmt.Errorf("dmsclient: stream carried %d of %d results", count, n)
	}
	sum := api.Summary{Jobs: n}
	for i := range out {
		if out[i].Error != "" {
			sum.Errors++
		}
		if out[i].Cached {
			sum.Cached++
		}
	}
	return out, &sum, nil
}

// CompileAll submits req synchronously and reassembles the streamed
// results in request (index) order, verifying that every job arrived
// exactly once. The returned summary is recomputed over the final
// results, so it reflects retry outcomes rather than first attempts.
func (c *Client) CompileAll(ctx context.Context, req api.CompileRequest) ([]api.JobResult, *api.Summary, error) {
	return collect(c.Compile(ctx, req), req.Jobs())
}

// ResultsAll streams a finished (or still running) job's results —
// resuming across dropped connections — and reassembles them in
// request (index) order. n is the batch size (api.Job.Jobs) of a job
// expected to run to completion; a stream that carries a different
// count is an error. A canceled or failed job's partial result set
// keeps its original batch indices (with gaps), so read it by
// iterating Results directly instead.
func (c *Client) ResultsAll(ctx context.Context, id string, n int) ([]api.JobResult, *api.Summary, error) {
	return collect(c.Results(ctx, id), n)
}
