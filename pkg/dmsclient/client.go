// Package dmsclient is the Go SDK for the compile service: a typed
// client over the repro/api/v1 wire contract with a streaming result
// iterator, index-order reassembly, and automatic retry of canceled
// and timed-out jobs with per-job backoff.
//
// A Client wraps one service base URL and an http.Client whose
// transport pools connections, so successive requests (including the
// single-job resubmissions the retry path issues) reuse TCP
// connections:
//
//	cli := dmsclient.New("http://localhost:8080")
//	for rec, err := range cli.Compile(ctx, req) {
//		if err != nil {
//			return err
//		}
//		fmt.Println(rec.Index, rec.Job, rec.II)
//	}
//
// Results arrive in completion order; CompileAll reassembles them in
// request (index) order. Jobs that fail with a retryable code
// (timeout, canceled) are resubmitted as single-job requests — with
// exponential per-job backoff — before their result is surfaced, so
// a transient deadline on a loaded server degrades into latency, not
// an error row.
//
// Every response is checked against the protocol version handshake:
// the client announces "v1" in the request and verifies the server's
// Dms-Protocol header before trusting the payload.
package dmsclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"net/http"
	"strings"
	"time"

	api "repro/api/v1"
)

// maxStreamLine bounds one NDJSON line of a compile response (rendered
// schedules grow with loop size, but 4 MiB is far beyond any real one).
const maxStreamLine = 4 << 20

// Client speaks protocol v1 to one compile service. Create it with
// New; it is safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (custom
// transport, timeout or middleware).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetries sets how many times a job that failed with a retryable
// code (timeout, canceled) is resubmitted before its failure is
// surfaced. 0 disables retries; the default is 2.
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the base per-job backoff before the first retry;
// it doubles on every further attempt. The default is 100 ms.
func WithBackoff(d time.Duration) Option {
	return func(c *Client) { c.backoff = d }
}

// New returns a client for the service at baseURL (scheme and host,
// e.g. "http://localhost:8080"; any trailing slash is trimmed).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      &http.Client{},
		retries: 2,
		backoff: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// checkProtocol enforces the version handshake on a response.
func checkProtocol(resp *http.Response) error {
	if got := resp.Header.Get(api.ProtocolHeader); got != api.Version {
		return fmt.Errorf("dmsclient: server spoke protocol %q, want %q (is this a %s service?)",
			got, api.Version, api.Version)
	}
	return nil
}

// decodeError turns a non-200 response into the *api.Error it carries
// (or a generic error when the body is not the structured form).
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var er api.ErrorResponse
	if err := json.Unmarshal(body, &er); err == nil && er.Error.Code != "" {
		return &er.Error
	}
	return fmt.Errorf("dmsclient: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

// do issues one request and verifies status and protocol handshake.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if err := checkProtocol(resp); err != nil {
		resp.Body.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp, nil
}

// getJSON fetches path and decodes the body into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health probes GET /v1/healthz.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	if err := c.getJSON(ctx, api.PathHealth, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Schedulers lists the server's registered back-ends.
func (c *Client) Schedulers(ctx context.Context) ([]api.SchedulerInfo, error) {
	var s []api.SchedulerInfo
	if err := c.getJSON(ctx, api.PathSchedulers, &s); err != nil {
		return nil, err
	}
	return s, nil
}

// Metrics fetches the service and cache counters.
func (c *Client) Metrics(ctx context.Context) (*api.ServerMetrics, error) {
	var m api.ServerMetrics
	if err := c.getJSON(ctx, api.PathMetrics, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// streamOnce submits req and invokes fn for every result line, in
// completion order, without any retry handling. It returns the
// terminal summary record, erroring if the stream ends without one
// (truncated response) or carries a different number of results than
// the summary claims.
func (c *Client) streamOnce(ctx context.Context, req api.CompileRequest, fn func(api.JobResult) bool) (*api.Summary, error) {
	if req.Protocol == "" {
		req.Protocol = api.Version
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, api.PathCompile, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxStreamLine)
	lines := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec, sum, err := api.DecodeStreamLine(line)
		if err != nil {
			return nil, err
		}
		if sum != nil {
			if sum.Jobs != lines {
				return nil, fmt.Errorf("dmsclient: stream carried %d results but the summary counts %d", lines, sum.Jobs)
			}
			return sum, nil
		}
		lines++
		if !fn(*rec) {
			return nil, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dmsclient: reading stream: %w", err)
	}
	return nil, fmt.Errorf("dmsclient: stream ended after %d results without a summary record", lines)
}

// Compile submits req and returns the results as a streaming iterator
// in completion order (reorder by Index for request order; CompileAll
// does this for you). Jobs whose failure is retryable are resubmitted
// up to the configured retry budget before being yielded, so a yielded
// timeout/cancellation is final. A transport or protocol failure is
// yielded once as a non-nil error and ends the stream.
func (c *Client) Compile(ctx context.Context, req api.CompileRequest) iter.Seq2[api.JobResult, error] {
	return func(yield func(api.JobResult, error) bool) {
		stopped := false
		_, err := c.streamOnce(ctx, req, func(rec api.JobResult) bool {
			// The index bound guards retryJob's axis lookup against a
			// non-conforming server: an out-of-range index is passed
			// through for CompileAll (or the caller) to reject, never
			// used to index the request.
			if rec.ErrorCode.Retryable() && c.retries > 0 && ctx.Err() == nil &&
				rec.Index >= 0 && rec.Index < req.Jobs() {
				rec = c.retryJob(ctx, &req, rec)
			}
			if !yield(rec, nil) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil && !stopped {
			yield(api.JobResult{}, err)
		}
	}
}

// retryJob resubmits one failed job as a single-job request with
// exponential backoff, returning either the first non-retryable
// outcome (success or hard failure) or, with the budget exhausted,
// the last failure. The returned result keeps the job's index in the
// original request.
func (c *Client) retryJob(ctx context.Context, req *api.CompileRequest, failed api.JobResult) api.JobResult {
	li, mi, si := req.JobAxes(failed.Index)
	sub := api.CompileRequest{
		Protocol:   api.Version,
		Loops:      []string{req.Loops[li]},
		Machines:   []api.MachineSpec{req.Machines[mi]},
		Schedulers: []string{req.Schedulers[si]},
		Options:    req.Options,
		TimeoutMS:  req.TimeoutMS,
		NoCache:    req.NoCache,
	}
	for attempt := 0; attempt < c.retries; attempt++ {
		if !sleepCtx(ctx, c.backoff<<attempt) {
			return failed
		}
		var got *api.JobResult
		_, err := c.streamOnce(ctx, sub, func(rec api.JobResult) bool {
			got = &rec
			return true
		})
		if err != nil || got == nil {
			continue // transport trouble: the original failure stands unless a later attempt lands
		}
		got.Index = failed.Index
		if got.Error == "" || !got.ErrorCode.Retryable() {
			return *got
		}
		failed = *got
	}
	return failed
}

// sleepCtx sleeps for d unless ctx ends first; it reports whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// CompileAll submits req and reassembles the streamed results in
// request (index) order, verifying that every job arrived exactly
// once. The returned summary is recomputed over the final results, so
// it reflects retry outcomes rather than first attempts.
func (c *Client) CompileAll(ctx context.Context, req api.CompileRequest) ([]api.JobResult, *api.Summary, error) {
	n := req.Jobs()
	out := make([]api.JobResult, n)
	seen := make([]bool, n)
	count := 0
	for rec, err := range c.Compile(ctx, req) {
		if err != nil {
			return nil, nil, err
		}
		if rec.Index < 0 || rec.Index >= n {
			return nil, nil, fmt.Errorf("dmsclient: result index %d out of range [0,%d)", rec.Index, n)
		}
		if seen[rec.Index] {
			return nil, nil, fmt.Errorf("dmsclient: job %d streamed twice", rec.Index)
		}
		seen[rec.Index] = true
		out[rec.Index] = rec
		count++
	}
	if count != n {
		return nil, nil, fmt.Errorf("dmsclient: stream carried %d of %d results", count, n)
	}
	sum := api.Summary{Jobs: n}
	for i := range out {
		if out[i].Error != "" {
			sum.Errors++
		}
		if out[i].Cached {
			sum.Cached++
		}
	}
	return out, &sum, nil
}
