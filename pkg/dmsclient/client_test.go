package dmsclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	api "repro/api/v1"
	"repro/internal/driver"
	"repro/internal/drivertest"
	"repro/internal/loop"
	"repro/internal/machine"
	"repro/internal/server"
)

// goldenLoopDir is the checked-in loop corpus; the e2e tests drive the
// service on exactly the loops whose schedules the rest of the suite
// pins down.
const goldenLoopDir = "../../internal/loop/testdata"

func readGoldenLoops(t *testing.T) (names, texts []string) {
	t.Helper()
	entries, err := os.ReadDir(goldenLoopDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".loop") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(goldenLoopDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, e.Name())
		texts = append(texts, string(data))
	}
	sort.Sort(byNameTexts{names, texts})
	if len(texts) < 2 {
		t.Fatalf("need at least 2 golden loops, have %d", len(texts))
	}
	return names, texts
}

type byNameTexts struct{ names, texts []string }

func (b byNameTexts) Len() int           { return len(b.names) }
func (b byNameTexts) Less(i, j int) bool { return b.names[i] < b.names[j] }
func (b byNameTexts) Swap(i, j int) {
	b.names[i], b.names[j] = b.names[j], b.names[i]
	b.texts[i], b.texts[j] = b.texts[j], b.texts[i]
}

// newTestService starts a server (torn down with the test) and returns
// it with its base URL.
func newTestService(t *testing.T, opt server.Options) (*server.Server, *httptest.Server) {
	t.Helper()
	svc := server.New(opt)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(svc.Close)
	return svc, ts
}

// directWant compiles the request's cross product straight through the
// driver and renders the wire records the SDK must reproduce.
func directWant(t *testing.T, texts []string, machines []*machine.Machine, schedulers []string) []string {
	t.Helper()
	var loops []*loop.Loop
	for _, text := range texts {
		l, err := loop.ParseString(text)
		if err != nil {
			t.Fatal(err)
		}
		loops = append(loops, l)
	}
	jobs := driver.Jobs(loops, machines, schedulers, driver.Options{})
	direct := driver.CompileAll(context.Background(), jobs, driver.BatchOptions{})
	want := make([]string, len(jobs))
	for i, res := range direct {
		if res.Err != nil {
			t.Fatalf("direct %s: %v", res.Job, res.Err)
		}
		rec := server.Record(res)
		rec.Index = i
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = string(b)
	}
	return want
}

// assertRecords compares reassembled results against the direct-driver
// reference, ignoring cache provenance.
func assertRecords(t *testing.T, results []api.JobResult, want []string) {
	t.Helper()
	if len(results) != len(want) {
		t.Fatalf("reassembled %d results for %d jobs", len(results), len(want))
	}
	for i, got := range results {
		got.Cached = false // cache provenance is service-side state, not payload
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != want[i] {
			t.Errorf("job %d diverges from direct CompileAll:\n got %s\nwant %s", i, gotJSON, want[i])
		}
	}
}

// TestClientEndToEnd is the synchronous-surface acceptance test: a
// server on a random port is driven exclusively through the client —
// the golden loop directory, two machines, one induced mid-stream
// timeout that the client retries — and the reassembled results are
// byte-identical to a direct driver.CompileAll run.
func TestClientEndToEnd(t *testing.T) {
	_, texts := readGoldenLoops(t)

	// The server resolves "dms" to a once-flaky wrapper around the real
	// scheduler: the first attempt at (loops[1], 2 clusters) fails with
	// a timeout-shaped error, every other call delegates.
	realDMS, err := driver.Get("dms")
	if err != nil {
		t.Fatal(err)
	}
	realTwoPhase, err := driver.Get("twophase")
	if err != nil {
		t.Fatal(err)
	}
	victim, err := loop.ParseString(texts[1])
	if err != nil {
		t.Fatal(err)
	}
	flaky := &drivertest.Flaky{Scheduler: realDMS, LoopName: victim.Name, Clusters: 2}
	reg := driver.NewRegistry()
	reg.MustRegister(flaky)
	reg.MustRegister(realTwoPhase)

	_, ts := newTestService(t, server.Options{Registry: reg})

	req := api.CompileRequest{
		Loops:      texts,
		Machines:   []api.MachineSpec{{Clusters: 2}, {Clusters: 4}},
		Schedulers: []string{"dms", "twophase"},
	}

	cli := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond))
	results, sum, err := cli.CompileAll(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	if !flaky.Fired.Load() {
		t.Fatal("the induced timeout never fired; the retry path was not exercised")
	}
	if sum.Jobs != req.Jobs() || sum.Errors != 0 {
		t.Fatalf("summary %+v, want %d jobs and 0 errors after retry", sum, req.Jobs())
	}

	want := directWant(t, texts, []*machine.Machine{machine.Clustered(2), machine.Clustered(4)}, req.Schedulers)
	assertRecords(t, results, want)

	// Exactly one job error reached the metrics (the induced timeout's
	// first attempt); the retry must not have double-counted.
	met, err := cli.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if met.JobErrors != 1 {
		t.Errorf("server job errors = %d, want exactly the 1 induced timeout", met.JobErrors)
	}

	// Discovery endpoints through the SDK.
	h, err := cli.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Protocol != api.Version {
		t.Errorf("health = %+v", h)
	}
	scheds, err := cli.Schedulers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) != 2 {
		t.Errorf("schedulers = %+v", scheds)
	}
}

// cutWriter aborts its connection after writing limit bytes, modelling
// a network drop mid-stream.
type cutWriter struct {
	http.ResponseWriter
	remaining int
}

func (c *cutWriter) Write(p []byte) (int, error) {
	if c.remaining <= 0 {
		panic(http.ErrAbortHandler)
	}
	if len(p) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.ResponseWriter.Write(p)
	c.remaining -= n
	return n, err
}

func (c *cutWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// dropResultsOnce cuts the FIRST un-resumed results stream (no ?from=)
// after limit bytes; every other request passes through.
type dropResultsOnce struct {
	inner http.Handler
	limit int
	fired atomic.Bool
}

func (d *dropResultsOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/results") && r.URL.Query().Get("from") == "" &&
		d.fired.CompareAndSwap(false, true) {
		d.inner.ServeHTTP(&cutWriter{ResponseWriter: w, remaining: d.limit}, r)
		return
	}
	d.inner.ServeHTTP(w, r)
}

// TestClientAsyncEndToEnd is the asynchronous acceptance test from the
// SDK's side: Submit admits the batch, Wait polls it to completion,
// and ResultsAll streams the retained buffer — surviving a connection
// killed mid-stream by resuming with the ?from= offset — into a result
// set byte-identical to a direct driver.CompileAll run.
func TestClientAsyncEndToEnd(t *testing.T) {
	_, texts := readGoldenLoops(t)
	svc := server.New(server.Options{})
	drop := &dropResultsOnce{inner: svc.Handler(), limit: 900}
	ts := httptest.NewServer(drop)
	t.Cleanup(ts.Close)
	t.Cleanup(svc.Close)

	req := api.CompileRequest{
		Loops:      texts,
		Machines:   []api.MachineSpec{{Clusters: 2}, {Clusters: 4}},
		Schedulers: []string{"dms", "twophase"},
	}
	cli := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond), WithPollInterval(5*time.Millisecond))

	job, err := cli.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if job.Jobs != req.Jobs() || job.State.Terminal() {
		t.Fatalf("created job = %+v", job)
	}

	done, err := cli.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != api.JobDone || done.Done != req.Jobs() || done.Errors != 0 {
		t.Fatalf("terminal job = %+v", done)
	}

	results, sum, err := cli.ResultsAll(context.Background(), job.ID, done.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !drop.fired.Load() {
		t.Fatal("the connection cut never fired; the resume path was not exercised")
	}
	if sum.Jobs != req.Jobs() || sum.Errors != 0 {
		t.Fatalf("summary %+v", sum)
	}
	want := directWant(t, texts, []*machine.Machine{machine.Clustered(2), machine.Clustered(4)}, req.Schedulers)
	assertRecords(t, results, want)
}

// saturate fills a single-executor service: one batch holds the
// executor (behind its scheduler's gate), one batch holds a queue
// slot.
func saturate(t *testing.T, cli *Client, texts []string) {
	t.Helper()
	running, err := cli.Submit(context.Background(), api.CompileRequest{
		Loops: texts[:1], Machines: []api.MachineSpec{{Clusters: 2}}, Schedulers: []string{"dms"},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := cli.Job(context.Background(), running.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == api.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := cli.Submit(context.Background(), api.CompileRequest{
		Loops: texts[1:2], Machines: []api.MachineSpec{{Clusters: 2}}, Schedulers: []string{"dms"},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestClientSubmitHonorsRetryAfter: a Submit against a saturated queue
// waits out the server-sent Retry-After hint and succeeds once the
// queue drains — no caller-side handling required.
func TestClientSubmitHonorsRetryAfter(t *testing.T) {
	_, texts := readGoldenLoops(t)
	gated, err := drivertest.NewGated("dms")
	if err != nil {
		t.Fatal(err)
	}
	reg := driver.NewRegistry()
	reg.MustRegister(gated)
	_, ts := newTestService(t, server.Options{
		Registry:      reg,
		QueueCapacity: 1,
		QueueWorkers:  1,
		RetryAfter:    time.Second,
	})

	cli := New(ts.URL, WithBackoff(time.Millisecond), WithPollInterval(5*time.Millisecond))
	saturate(t, cli, texts)

	// A near-zero wait budget confirms the queue is full and the typed
	// error carries the decoded Retry-After hint (the 1s hint cannot
	// fit a 1ms budget, so the first rejection is surfaced).
	_, err = New(ts.URL, WithMaxRetryWait(time.Millisecond)).Submit(context.Background(), api.CompileRequest{
		Loops: texts[2:3], Machines: []api.MachineSpec{{Clusters: 2}}, Schedulers: []string{"dms"},
	})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeQueueFull {
		t.Fatalf("saturated submit error = %v, want queue_full", err)
	}
	if apiErr.RetryAfter != time.Second {
		t.Fatalf("decoded Retry-After = %v, want 1s", apiErr.RetryAfter)
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Errorf("budget-exhausted error %q does not say so", err)
	}

	// With a budget, Submit waits the hint out; the gate opens while it
	// sleeps, so the retry is admitted. The synchronous surface shares
	// the admission path, so CompileAll must recover the same way.
	start := time.Now()
	syncDone := make(chan error, 1)
	go func() {
		_, sum, err := cli.CompileAll(context.Background(), api.CompileRequest{
			Loops: texts[3:4], Machines: []api.MachineSpec{{Clusters: 2}}, Schedulers: []string{"dms"},
		})
		if err == nil && sum.Errors != 0 {
			err = fmt.Errorf("sync summary %+v", sum)
		}
		syncDone <- err
	}()
	go func() {
		time.Sleep(200 * time.Millisecond)
		close(gated.Gate)
	}()
	job, err := cli.Submit(context.Background(), api.CompileRequest{
		Loops: texts[2:3], Machines: []api.MachineSpec{{Clusters: 2}}, Schedulers: []string{"dms"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited < time.Second {
		t.Errorf("Submit returned after %v, before the 1s Retry-After hint elapsed", waited)
	}
	if done, err := cli.Wait(context.Background(), job.ID); err != nil || done.State != api.JobDone {
		t.Fatalf("admitted job = %+v, %v", done, err)
	}
	if err := <-syncDone; err != nil {
		t.Fatalf("synchronous CompileAll did not recover from queue_full: %v", err)
	}
}

// TestClientRetryBudgetExhaustion: the cumulative retry wait is capped
// and the error surfaces how long the client waited and why.
func TestClientRetryBudgetExhaustion(t *testing.T) {
	_, texts := readGoldenLoops(t)
	gated, err := drivertest.NewGated("dms")
	if err != nil {
		t.Fatal(err)
	}
	reg := driver.NewRegistry()
	reg.MustRegister(gated)
	_, ts := newTestService(t, server.Options{
		Registry:      reg,
		QueueCapacity: 1,
		QueueWorkers:  1,
		RetryAfter:    time.Second,
	})
	defer close(gated.Gate)

	cli := New(ts.URL, WithBackoff(time.Millisecond), WithPollInterval(5*time.Millisecond))
	saturate(t, cli, texts)

	budgeted := New(ts.URL, WithMaxRetryWait(1500*time.Millisecond))
	start := time.Now()
	_, err = budgeted.Submit(context.Background(), api.CompileRequest{
		Loops: texts[2:3], Machines: []api.MachineSpec{{Clusters: 2}}, Schedulers: []string{"dms"},
	})
	if err == nil {
		t.Fatal("submit against a permanently full queue succeeded")
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") || !strings.Contains(err.Error(), "waited") {
		t.Errorf("error %q does not surface the exhausted budget and waited time", err)
	}
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeQueueFull {
		t.Errorf("budget error does not wrap the queue_full cause: %v", err)
	}
	// One 1s Retry-After sleep fits the 1.5s budget, a second does not:
	// the call must have waited about a second, not two.
	if waited := time.Since(start); waited < time.Second || waited > 2*time.Second {
		t.Errorf("budgeted submit took %v, want ~1s (one honored hint, then exhaustion)", waited)
	}
}

// TestClientCancelJob: the SDK's cancel path on a queued job — the
// job finishes canceled with an empty, zero-summary result stream.
func TestClientCancelJob(t *testing.T) {
	_, texts := readGoldenLoops(t)
	gated, err := drivertest.NewGated("dms")
	if err != nil {
		t.Fatal(err)
	}
	reg := driver.NewRegistry()
	reg.MustRegister(gated)
	_, ts := newTestService(t, server.Options{Registry: reg, QueueWorkers: 1})
	defer close(gated.Gate)

	cli := New(ts.URL, WithPollInterval(5*time.Millisecond))
	saturate(t, cli, texts) // second submission is queued

	// Saturate returned after submitting two; grab the queued one by
	// submitting a third and canceling it while the executor is held.
	victim, err := cli.Submit(context.Background(), api.CompileRequest{
		Loops: texts[2:3], Machines: []api.MachineSpec{{Clusters: 2}}, Schedulers: []string{"dms"},
	})
	if err != nil {
		t.Fatal(err)
	}
	canceled, err := cli.Cancel(context.Background(), victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if canceled.State != api.JobCanceled {
		t.Fatalf("canceled job state = %s", canceled.State)
	}
	recs, sum, err := cli.ResultsAll(context.Background(), victim.ID, 0)
	if err != nil || len(recs) != 0 || sum.Jobs != 0 {
		t.Fatalf("canceled job results = %d recs, %+v, %v", len(recs), sum, err)
	}
}

// TestClientStreamIterator covers the iter.Seq2 surface directly:
// completion-order delivery, early break, and the context still being
// honored.
func TestClientStreamIterator(t *testing.T) {
	_, texts := readGoldenLoops(t)
	_, ts := newTestService(t, server.Options{})

	cli := New(ts.URL)
	req := api.CompileRequest{
		Loops:      texts[:2],
		Machines:   []api.MachineSpec{{Clusters: 2}},
		Schedulers: []string{"dms"},
	}
	seen := 0
	for rec, err := range cli.Compile(context.Background(), req) {
		if err != nil {
			t.Fatal(err)
		}
		if rec.Error != "" {
			t.Fatalf("job %d: %s", rec.Index, rec.Error)
		}
		seen++
	}
	if seen != 2 {
		t.Fatalf("iterator yielded %d results, want 2", seen)
	}

	// Early break must not error or leak.
	for range cli.Compile(context.Background(), req) {
		break
	}
}

// TestClientSurfacesStructuredErrors: a request-level failure comes
// back as the typed *api.Error, not a stringly HTTP error — on both
// submission surfaces.
func TestClientSurfacesStructuredErrors(t *testing.T) {
	_, texts := readGoldenLoops(t)
	_, ts := newTestService(t, server.Options{})

	cli := New(ts.URL)
	req := api.CompileRequest{
		Loops:      texts[:1],
		Machines:   []api.MachineSpec{{Clusters: 2}},
		Schedulers: []string{"nope"},
	}
	_, _, err := cli.CompileAll(context.Background(), req)
	apiErr, ok := err.(*api.Error)
	if !ok {
		t.Fatalf("error type %T (%v), want *api.Error", err, err)
	}
	if apiErr.Code != api.CodeUnknownScheduler {
		t.Errorf("code %q, want %q", apiErr.Code, api.CodeUnknownScheduler)
	}
	if _, err := cli.Submit(context.Background(), req); !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnknownScheduler {
		t.Errorf("async submit error = %v, want unknown_scheduler", err)
	}
	// An unknown job ID is a typed, non-retryable not_found.
	if _, err := cli.Job(context.Background(), "no-such-job"); !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		t.Errorf("unknown job error = %v, want not_found", err)
	}
	for _, err := range cli.Results(context.Background(), "no-such-job") {
		if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
			t.Errorf("unknown job results error = %v, want not_found", err)
		}
	}
}

// TestClientProtocolHandshake: a server that does not speak v1 (no
// protocol header) is rejected before any payload is trusted.
func TestClientProtocolHandshake(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`) // no Dms-Protocol header
	}))
	defer fake.Close()

	cli := New(fake.URL)
	if _, err := cli.Health(context.Background()); err == nil || !strings.Contains(err.Error(), "protocol") {
		t.Fatalf("handshake failure not detected: %v", err)
	}
}

// TestClientTruncatedStream: a synchronous stream that dies before the
// summary record is an error, not a silently short result set.
func TestClientTruncatedStream(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.ProtocolHeader, api.Version)
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"index":0,"job":"a/b/c","mii":1,"ii":1}`)
		// ...and no summary line.
	}))
	defer fake.Close()

	cli := New(fake.URL)
	_, _, err := cli.CompileAll(context.Background(), api.CompileRequest{
		Loops: []string{"x"}, Machines: []api.MachineSpec{{Clusters: 1}}, Schedulers: []string{"dms"},
	})
	if err == nil || !strings.Contains(err.Error(), "summary") {
		t.Fatalf("truncated stream not detected: %v", err)
	}
}

// TestClientResultsGivesUpWithoutProgress: a results stream that drops
// repeatedly with no new lines is surfaced as an error after the
// configured attempts, not retried forever.
func TestClientResultsGivesUpWithoutProgress(t *testing.T) {
	var calls atomic.Int64
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set(api.ProtocolHeader, api.Version)
		w.Header().Set("Content-Type", "application/x-ndjson")
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // drop every connection before any line
	}))
	defer fake.Close()

	cli := New(fake.URL, WithRetries(2), WithBackoff(time.Millisecond))
	var got error
	for _, err := range cli.Results(context.Background(), "some-job") {
		got = err
	}
	if got == nil || !strings.Contains(got.Error(), "failed after") {
		t.Fatalf("endless drop not surfaced: %v", got)
	}
	// Initial attempt + 2 retries.
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d attempts, want 3", n)
	}
}
