package dmsclient

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	api "repro/api/v1"
	"repro/internal/ddg"
	"repro/internal/driver"
	"repro/internal/loop"
	"repro/internal/machine"
	"repro/internal/schedule"
	"repro/internal/server"
)

// goldenLoopDir is the checked-in loop corpus; the e2e test drives the
// service on exactly the loops whose schedules the rest of the suite
// pins down.
const goldenLoopDir = "../../internal/loop/testdata"

func readGoldenLoops(t *testing.T) (names, texts []string) {
	t.Helper()
	entries, err := os.ReadDir(goldenLoopDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".loop") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(goldenLoopDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, e.Name())
		texts = append(texts, string(data))
	}
	sort.Sort(byNameTexts{names, texts})
	if len(texts) < 2 {
		t.Fatalf("need at least 2 golden loops, have %d", len(texts))
	}
	return names, texts
}

type byNameTexts struct{ names, texts []string }

func (b byNameTexts) Len() int           { return len(b.names) }
func (b byNameTexts) Less(i, j int) bool { return b.names[i] < b.names[j] }
func (b byNameTexts) Swap(i, j int) {
	b.names[i], b.names[j] = b.names[j], b.names[i]
	b.texts[i], b.texts[j] = b.texts[j], b.texts[i]
}

// flakyScheduler wraps a real back-end and fails exactly once — with a
// timeout-shaped error — for the job matching (loopName, clusters),
// inducing the mid-stream retry the e2e test asserts on.
type flakyScheduler struct {
	driver.Scheduler
	loopName string
	clusters int
	fired    atomic.Bool
}

func (f *flakyScheduler) Schedule(ctx context.Context, g *ddg.Graph, m *machine.Machine, opt driver.Options) (*schedule.Schedule, driver.Stats, error) {
	if m.Clusters == f.clusters && strings.Contains(g.Name(), f.loopName) && f.fired.CompareAndSwap(false, true) {
		return nil, driver.Stats{}, fmt.Errorf("induced scheduling timeout: %w", context.DeadlineExceeded)
	}
	return f.Scheduler.Schedule(ctx, g, m, opt)
}

// TestClientEndToEnd is the SDK acceptance test: a server on a random
// port is driven exclusively through the client — the golden loop
// directory, two machines, one induced mid-stream timeout that the
// client retries — and the reassembled results are byte-identical to a
// direct driver.CompileAll run. The legacy unprefixed routes still
// answer, with a deprecation header.
func TestClientEndToEnd(t *testing.T) {
	names, texts := readGoldenLoops(t)

	// The server resolves "dms" to a once-flaky wrapper around the real
	// scheduler: the first attempt at (loops[1], 2 clusters) fails with
	// a timeout-shaped error, every other call delegates.
	realDMS, err := driver.Get("dms")
	if err != nil {
		t.Fatal(err)
	}
	realTwoPhase, err := driver.Get("twophase")
	if err != nil {
		t.Fatal(err)
	}
	victim, err := loop.ParseString(texts[1])
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyScheduler{Scheduler: realDMS, loopName: victim.Name, clusters: 2}
	reg := driver.NewRegistry()
	reg.MustRegister(flaky)
	reg.MustRegister(realTwoPhase)

	svc := server.New(server.Options{Registry: reg})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	req := api.CompileRequest{
		Loops:      texts,
		Machines:   []api.MachineSpec{{Clusters: 2}, {Clusters: 4}},
		Schedulers: []string{"dms", "twophase"},
	}

	cli := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond))
	results, sum, err := cli.CompileAll(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	if !flaky.fired.Load() {
		t.Fatal("the induced timeout never fired; the retry path was not exercised")
	}
	if sum.Jobs != req.Jobs() || sum.Errors != 0 {
		t.Fatalf("summary %+v, want %d jobs and 0 errors after retry", sum, req.Jobs())
	}

	// The reference: the same cross product compiled directly (real
	// schedulers, no service in the path).
	var loops []*loop.Loop
	for _, text := range texts {
		l, err := loop.ParseString(text)
		if err != nil {
			t.Fatal(err)
		}
		loops = append(loops, l)
	}
	machines := []*machine.Machine{machine.Clustered(2), machine.Clustered(4)}
	jobs := driver.Jobs(loops, machines, req.Schedulers, driver.Options{})
	direct := driver.CompileAll(context.Background(), jobs, driver.BatchOptions{})

	if len(results) != len(jobs) {
		t.Fatalf("client reassembled %d results for %d jobs", len(results), len(jobs))
	}
	for i, res := range direct {
		if res.Err != nil {
			t.Fatalf("direct %s: %v", res.Job, res.Err)
		}
		want := server.Record(res)
		want.Index = i
		got := results[i]
		got.Cached = false // cache provenance is service-side state, not payload
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(wantJSON) != string(gotJSON) {
			t.Errorf("job %d (%s, loop file %s) diverges from direct CompileAll:\n got %s\nwant %s",
				i, res.Job, names[i/(len(machines)*len(req.Schedulers))], gotJSON, wantJSON)
		}
	}

	// Exactly one job error reached the metrics (the induced timeout's
	// first attempt); the retry must not have double-counted.
	met, err := cli.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if met.JobErrors != 1 {
		t.Errorf("server job errors = %d, want exactly the 1 induced timeout", met.JobErrors)
	}

	// Discovery endpoints through the SDK.
	h, err := cli.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Protocol != api.Version {
		t.Errorf("health = %+v", h)
	}
	scheds, err := cli.Schedulers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) != 2 {
		t.Errorf("schedulers = %+v", scheds)
	}

	// Legacy unprefixed routes still answer, marked deprecated.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("legacy /healthz status %d", resp.StatusCode)
	}
	if dep := resp.Header.Get(api.DeprecationHeader); dep != "true" {
		t.Errorf("legacy /healthz deprecation header = %q, want \"true\"", dep)
	}
}

// TestClientStreamIterator covers the iter.Seq2 surface directly:
// completion-order delivery, early break, and the context still being
// honored.
func TestClientStreamIterator(t *testing.T) {
	_, texts := readGoldenLoops(t)
	svc := server.New(server.Options{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cli := New(ts.URL)
	req := api.CompileRequest{
		Loops:      texts[:2],
		Machines:   []api.MachineSpec{{Clusters: 2}},
		Schedulers: []string{"dms"},
	}
	seen := 0
	for rec, err := range cli.Compile(context.Background(), req) {
		if err != nil {
			t.Fatal(err)
		}
		if rec.Error != "" {
			t.Fatalf("job %d: %s", rec.Index, rec.Error)
		}
		seen++
	}
	if seen != 2 {
		t.Fatalf("iterator yielded %d results, want 2", seen)
	}

	// Early break must not error or leak.
	for range cli.Compile(context.Background(), req) {
		break
	}
}

// TestClientSurfacesStructuredErrors: a request-level failure comes
// back as the typed *api.Error, not a stringly HTTP error.
func TestClientSurfacesStructuredErrors(t *testing.T) {
	_, texts := readGoldenLoops(t)
	svc := server.New(server.Options{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cli := New(ts.URL)
	req := api.CompileRequest{
		Loops:      texts[:1],
		Machines:   []api.MachineSpec{{Clusters: 2}},
		Schedulers: []string{"nope"},
	}
	_, _, err := cli.CompileAll(context.Background(), req)
	apiErr, ok := err.(*api.Error)
	if !ok {
		t.Fatalf("error type %T (%v), want *api.Error", err, err)
	}
	if apiErr.Code != api.CodeUnknownScheduler {
		t.Errorf("code %q, want %q", apiErr.Code, api.CodeUnknownScheduler)
	}
}

// TestClientProtocolHandshake: a server that does not speak v1 (no
// protocol header) is rejected before any payload is trusted.
func TestClientProtocolHandshake(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`) // no Dms-Protocol header
	}))
	defer fake.Close()

	cli := New(fake.URL)
	if _, err := cli.Health(context.Background()); err == nil || !strings.Contains(err.Error(), "protocol") {
		t.Fatalf("handshake failure not detected: %v", err)
	}
}

// TestClientTruncatedStream: a stream that dies before the summary
// record is an error, not a silently short result set.
func TestClientTruncatedStream(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.ProtocolHeader, api.Version)
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"index":0,"job":"a/b/c","mii":1,"ii":1}`)
		// ...and no summary line.
	}))
	defer fake.Close()

	cli := New(fake.URL)
	_, _, err := cli.CompileAll(context.Background(), api.CompileRequest{
		Loops: []string{"x"}, Machines: []api.MachineSpec{{Clusters: 1}}, Schedulers: []string{"dms"},
	})
	if err == nil || !strings.Contains(err.Error(), "summary") {
		t.Fatalf("truncated stream not detected: %v", err)
	}
}
